"""Compiled edge schedule: the kernel's table-driven hot path.

The 250 MHz and 322 MHz domains interleave with an exactly periodic
pattern: every domain's edge times satisfy ``edge_ps(k + m) =
edge_ps(k) + W`` where ``W`` is the least common window of the exact
rational periods (500 ns for 250/322 MHz) and ``m`` is that domain's
cycle count per window.  Periodicity is exact — ``W * den`` is an
integer multiple of ``num`` by construction, so the floor-division
rounding in ``edge_ps`` repeats identically window after window; no
float period is ever summed (simlint F4T006/F4T007).

:func:`compile_schedule` lowers the registered domains into one static
:class:`ScheduleTable`: two preallocated int arrays, one holding the
domain index of each slot and one the edge-time offset within the
window, sorted by ``(offset, registration index)`` — the same
deterministic tie-break the per-step scan applies at coincident edges.
``Simulator`` then replaces its per-step min-scan over domains with a
table cursor: advance one slot, add the offset to the window base, tick
the slot's domain.  RapidStream TAPA's fast cosim flow is the exemplar:
lower the dataflow to a static schedule once, then replay it.

Irrational-ish frequencies (anything whose float->Fraction denominator
makes the window explode) simply fail to compile under the slot cap and
the kernel keeps its legacy scan — compilation is an optimization, never
a semantic change.
"""

from __future__ import annotations

from array import array
from math import gcd
from typing import List, Optional, Sequence

#: Slot cap: 250/322 MHz needs 286 slots; anything orders of magnitude
#: beyond this came from a degenerate float ratio and would cost more to
#: build and hold than the scan it replaces.
MAX_SLOTS = 65_536


class ScheduleTable:
    """One compiled LCM window of edge slots over the registered domains.

    ``slot_domain[i]`` is the registration index of the domain ticking
    at slot ``i``; ``slot_offset_ps[i]`` is that edge's integer-ps time
    offset within the window, in ``(0, window_ps]``.  Absolute edge time
    is ``window_base_ps + slot_offset_ps[i]`` where the base advances by
    ``window_ps`` each wrap.  ``cycles_per_window[d]`` counts domain
    ``d``'s slots per window — the cursor <-> domain-cycle conversion
    used to resync after an idle skip.
    """

    __slots__ = (
        "window_ps",
        "slots",
        "slot_domain",
        "slot_offset_ps",
        "cycles_per_window",
    )

    def __init__(
        self,
        window_ps: int,
        slot_domain: Sequence[int],
        slot_offset_ps: Sequence[int],
        cycles_per_window: Sequence[int],
    ) -> None:
        self.window_ps = window_ps
        self.slots = len(slot_domain)
        #: Preallocated int arrays — the whole point of the lowering:
        #: the hot loop indexes two flat arrays instead of re-deriving
        #: the interleaving from big-int rational arithmetic per step.
        self.slot_domain = array("H", slot_domain)
        self.slot_offset_ps = array("q", slot_offset_ps)
        self.cycles_per_window = array("q", cycles_per_window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ScheduleTable {self.slots} slots / {self.window_ps} ps, "
            f"domains={list(self.cycles_per_window)}>"
        )


def compile_schedule(domains: Sequence) -> Optional[ScheduleTable]:
    """Compile registered domains into a :class:`ScheduleTable`.

    Returns None when no exact finite table exists within
    :data:`MAX_SLOTS` — the caller keeps the legacy per-step scan.
    ``domains`` is the simulator's registration-ordered list; each needs
    the ``_num``/``_den`` exact rational period and ``edge_ps``.
    """
    if not domains or len(domains) > 65_535:
        return None
    # Minimal exact window per domain: W_d = num/gcd(num, den); the
    # combined window is their lcm.  All integer arithmetic.
    window = 1
    for d in domains:
        g = gcd(d._num, d._den)
        w_d = d._num // g
        window = window * w_d // gcd(window, w_d)
        if window > (1 << 62):
            return None
    cycles: List[int] = []
    total = 0
    for d in domains:
        m, rem = divmod(window * d._den, d._num)
        if rem:  # cannot happen given window's construction; be safe
            return None
        cycles.append(m)
        total += m
        if total > MAX_SLOTS:
            return None
    # Edge offsets for window 0: domain d contributes edges 1..m_d.
    # Exact periodicity makes window w's slot times base + offset for
    # every w, with base = w * window.  Sorting by (offset, index)
    # reproduces the scan's registration-order tie-break at coincident
    # edges exactly.
    merged = sorted(
        (d.edge_ps(k), index)
        for index, d in enumerate(domains)
        for k in range(1, cycles[index] + 1)
    )
    return ScheduleTable(
        window_ps=window,
        slot_domain=[index for _t, index in merged],
        slot_offset_ps=[t for t, _index in merged],
        cycles_per_window=cycles,
    )


def locate_cursor(
    table: ScheduleTable, domains: Sequence
) -> Optional[tuple]:
    """Find the (window_base_ps, cursor) matching the domains' cycles.

    The kernel calls this to (re)sync the table cursor to whatever
    cycle state the domains are in — after construction, a reset, or an
    idle skip (which advances ``cycle`` without stepping).  Any state
    the kernel itself produces consumes edges in slot order, so the
    consumed set is always a prefix of some window and a consistent
    position exists; if external surgery desynced the domains, returns
    None and the caller falls back to the legacy scan.
    """
    # The next edge to tick (earliest time, registration-order
    # tie-break) anchors the position.
    best_index = 0
    best_edge = domains[0].edge_ps(domains[0].cycle + 1)
    for i in range(1, len(domains)):
        e = domains[i].edge_ps(domains[i].cycle + 1)
        if e < best_edge:
            best_index, best_edge = i, e
    window = table.window_ps
    # Offsets live in (0, window]: the edge at exactly a window boundary
    # belongs to the *previous* window's last slots.
    base = (best_edge - 1) // window * window
    offset = best_edge - base
    slot_domain = table.slot_domain
    slot_offset = table.slot_offset_ps
    cursor = None
    for s in range(table.slots):
        if slot_offset[s] == offset and slot_domain[s] == best_index:
            cursor = s
            break
    if cursor is None:
        return None
    # Validate: every domain's cycle count must equal full windows done
    # plus its slots before the cursor in this window.
    windows_done = base // window
    for index, d in enumerate(domains):
        before = 0
        for s in range(cursor):
            if slot_domain[s] == index:
                before += 1
        if d.cycle != windows_done * table.cycles_per_window[index] + before:
            return None
    return base, cursor
