"""Bounded FIFO with backpressure, the glue between pipeline stages.

FtEngine connects its modules with FIFOs (e.g. the scheduler's four
16-entry coalesce FIFOs, the pending queue).  ``push`` returns False when
full so upstream logic observes backpressure — the signal the scheduler
uses to detect a congested FPC (§4.4.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class Fifo(Generic[T]):
    """A bounded first-in-first-out queue tracking occupancy statistics."""

    def __init__(self, capacity: int, name: str = "fifo") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.pushes = 0
        self.pops = 0
        self.rejects = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: T) -> bool:
        """Append ``item``; returns False (and drops nothing) when full."""
        if self.full:
            self.rejects += 1
            return False
        self._items.append(item)
        self.pushes += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)
        return True

    def pop(self) -> T:
        if not self._items:
            raise IndexError(f"pop from empty FIFO {self.name!r}")
        self.pops += 1
        return self._items.popleft()

    def peek(self) -> T:
        if not self._items:
            raise IndexError(f"peek on empty FIFO {self.name!r}")
        return self._items[0]

    def try_pop(self) -> Optional[T]:
        """Pop the head, or return None when empty."""
        if not self._items:
            return None
        self.pops += 1
        return self._items.popleft()

    def push_many(self, items: List[T]) -> int:
        """Append a run of items; returns how many fit.

        Bulk equivalent of calling :meth:`push` per item — accepted
        prefix, rejected tail, same statistics — with one occupancy
        update instead of one per element.  Batch-drain hooks use it to
        coalesce whole runs of pending work.
        """
        room = self.capacity - len(self._items)
        if room >= len(items):
            accepted = len(items)
            self._items.extend(items)
        else:
            accepted = max(room, 0)
            self._items.extend(items[:accepted])
            self.rejects += len(items) - accepted
        self.pushes += accepted
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)
        return accepted

    def pop_many(self, n: int) -> List[T]:
        """Pop up to ``n`` items, preserving order (bulk :meth:`try_pop`)."""
        take = min(n, len(self._items))
        items = self._items
        out = [items.popleft() for _ in range(take)]
        self.pops += take
        return out

    def drain(self) -> List[T]:
        """Pop everything, preserving order."""
        items = list(self._items)
        self.pops += len(items)
        self._items.clear()
        return items

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Fifo {self.name!r} {len(self._items)}/{self.capacity}>"
