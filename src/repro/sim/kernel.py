"""Cycle-driven simulation kernel with multiple clock domains.

FtEngine runs most logic at 250 MHz while the network-facing modules (ARP,
ICMP, packet generator, RX parser) run at 322 MHz (the Ethernet IP clock).
The kernel keeps global time in **exact integer picoseconds** and advances
whichever domain has the earliest next edge, so mixed-frequency models
stay in step.

Time contract (the part every exhibit and sweep sits on):

* Edge ``k`` of a domain lands at ``round(k * PS_PER_SECOND / freq_hz)``,
  computed with integer arithmetic from the *absolute* cycle index.  The
  per-edge rounding error is at most half a picosecond and never
  accumulates — there is no float period being summed, so the 250 MHz
  and 322 MHz domains cannot drift apart over long runs (the same
  contract simlint rule F4T006/F4T007 enforces on the rest of the tree).
* ``Simulator.time_ps`` is an ``int``.  It only ever takes edge values
  (or a scheduled wakeup landing, which the very next ``step()`` crosses
  on the first edge at or after it — a wakeup scheduled exactly *on* an
  edge fires on that edge, not one cycle later).
* Simultaneous cross-domain edges tie-break by **domain registration
  order**, deterministically.  250 MHz and 322 MHz edges really do
  coincide (every 500 ns), so this is load-bearing for replayability.

Scheduling structures:

* Wakeups live in a lazily-pruned min-heap: stale entries are dropped on
  every insert and every pop, so a busy run that schedules each arrival
  keeps the heap bounded by the number of still-future wakeups instead
  of growing with every call.
* Each domain keeps a busy-set: a component whose ``busy()`` goes False
  after a tick is parked and not ticked again until it is woken —
  explicitly via :meth:`Simulator.wake`, or implicitly when the kernel
  skips to a scheduled wakeup.  Components using the conservative
  default ``busy() -> True`` are never parked.

Two usage styles are supported:

* ``run_cycles`` — tight loop over a single domain, used by the
  micro-architectural experiments (Figs 2, 15, 16b) where every cycle does
  work.
* ``run_until`` — run until a predicate is true or every component reports
  idle, with idle-skip to the next scheduled wakeup.  Used by functional
  end-to-end runs where long stretches are quiet (e.g. waiting for an RTO).
"""

from __future__ import annotations

import heapq
import math
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Set, Union

from .component import Component
from .schedule import ScheduleTable, compile_schedule, locate_cursor

PS_PER_SECOND = 1_000_000_000_000


class ClockDomain:
    """A clock with a frequency; owns the components ticked on its edges."""

    def __init__(self, name: str, freq_hz: float) -> None:
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        self.name = name
        self.freq_hz = float(freq_hz)
        # Exact rational period: edge_ps(k) = round(k * _num / _den).
        ratio = Fraction(freq_hz)
        self._num = PS_PER_SECOND * ratio.denominator
        self._den = ratio.numerator
        self._half = self._den // 2
        self.cycle = 0
        self.components: List[Component] = []
        #: Components parked off the tick list because ``busy()`` went
        #: False; woken by :meth:`wake` or a wakeup skip.
        self._parked: Set[Component] = set()
        #: Tick-list cache excluding parked components, in registration
        #: order; only consulted while something is parked.
        self._active: List[Component] = []

    @property
    def period_ps(self) -> float:
        """Nominal period as a float — for display and analytic models
        only; edge times come from :meth:`edge_ps` and never accumulate
        this value."""
        return self._num / self._den

    def edge_ps(self, cycle: int) -> int:
        """Exact integer-picosecond time of this domain's ``cycle``-th edge."""
        return (cycle * self._num + self._half) // self._den

    @property
    def next_edge_ps(self) -> int:
        return self.edge_ps(self.cycle + 1)

    def last_cycle_before(self, t_ps: int) -> int:
        """Largest cycle index whose edge lands strictly before ``t_ps``.

        Landing here means the very next tick crosses the first edge at
        or after ``t_ps`` — the no-late-wakeup guarantee.
        """
        k = (t_ps * self._den) // self._num
        while self.edge_ps(k) >= t_ps:
            k -= 1
        while self.edge_ps(k + 1) < t_ps:
            k += 1
        return k

    # ------------------------------------------------------------ busy-set
    def _rebuild_active(self) -> None:
        parked = self._parked
        self._active = [c for c in self.components if c not in parked]

    def add(self, component: Component) -> None:
        self.components.append(component)
        if self._parked:
            # Registration order is preserved: the newcomer is last.
            self._active.append(component)

    def wake(self, component: Optional[Component] = None) -> None:
        """Return parked component(s) to the tick list.

        Woken components rejoin at the domain's current cycle (their own
        ``cycle`` counter is fast-forwarded), so cycle-relative logic
        stays aligned after a park.
        """
        if not self._parked:
            return
        if component is None:
            woken = list(self._parked)
        elif component in self._parked:
            woken = [component]
        else:
            return
        for c in woken:
            self._parked.discard(c)
            c.cycle = self.cycle
        self._rebuild_active()

    def tick(self) -> None:
        """Advance one cycle, ticking unparked components in order.

        A component whose ``busy()`` reports False after its tick is
        parked: it is not ticked again until woken.  Components keeping
        the conservative ``Component.busy`` default (always True) are
        never parked.
        """
        self.cycle += 1
        run = self._active if self._parked else self.components
        for component in run:
            component.tick()
        parked = False
        for component in run:
            if not component.busy():
                self._parked.add(component)
                parked = True
        if parked:
            self._rebuild_active()

    def tick_batch(self, n: int) -> None:
        """Advance ``n`` cycles, draining components in bulk when possible.

        Exactly equivalent to ``n`` :meth:`tick` calls when every
        unparked component honours the :meth:`Component.drain` contract
        — no external input can arrive inside the window because
        nothing else runs while the batch drains, and parking is
        applied once at the end, which is unobservable since ``wake``
        only happens between kernel entry points.  Any component
        without ``supports_drain`` sends the whole batch down the
        per-cycle path instead, so unconverted components keep their
        exact tick-by-tick semantics.
        """
        if n <= 0:
            return
        run = self._active if self._parked else self.components
        for component in run:
            if not component.supports_drain:
                for _ in range(n):
                    self.tick()
                return
        for component in run:
            component.drain(n)
        self.cycle += n
        parked = False
        for component in run:
            if not component.busy():
                self._parked.add(component)
                parked = True
        if parked:
            self._rebuild_active()

    def busy(self) -> bool:
        run = self._active if self._parked else self.components
        for component in run:
            if component.busy():
                return True
        return False

    def reset(self) -> None:
        self.cycle = 0
        self._parked.clear()
        self._active = []
        for component in self.components:
            component.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mhz = self.freq_hz / 1e6
        return f"<ClockDomain {self.name!r} {mhz:.0f}MHz cycle={self.cycle}>"


class Simulator:
    """Multi-domain cycle simulator keeping exact integer-picosecond time."""

    def __init__(self) -> None:
        self.domains: Dict[str, ClockDomain] = {}
        #: Registration order — the deterministic tie-break for
        #: simultaneous cross-domain edges.
        self._domain_list: List[ClockDomain] = []
        self.time_ps: int = 0
        #: Lazily-pruned min-heap of future wakeup times (integer ps).
        self._wakeups: List[int] = []
        #: Compiled edge schedule (see :mod:`repro.sim.schedule`): a
        #: static table of (domain index, edge offset) slots over one
        #: LCM window, replacing the per-step min-scan with a cursor.
        self._table: Optional[ScheduleTable] = None
        self._table_base_ps = 0
        self._table_cursor = 0
        #: True whenever domain cycles moved without the cursor (idle
        #: skip, bulk run, reset) — the next hot-path entry resyncs.
        self._table_dirty = True
        #: Set when compilation fails (degenerate frequency ratio) or a
        #: resync finds externally-surgeried cycle state the table
        #: cannot express; the kernel then keeps the legacy scan until
        #: ``reset``/``add_domain`` re-arm compilation.
        self._table_broken = False

    def add_domain(self, name: str, freq_hz: float) -> ClockDomain:
        if name in self.domains:
            raise ValueError(f"duplicate clock domain {name!r}")
        domain = ClockDomain(name, freq_hz)
        self.domains[name] = domain
        self._domain_list.append(domain)
        self._table = None
        self._table_dirty = True
        self._table_broken = False
        return domain

    def _table_sync(self) -> bool:
        """(Re)align the schedule-table cursor with the domains' cycles.

        Returns True when the table-driven path may run.  Compilation
        happens once per domain set; resync after a cycle jump is a
        cursor search plus a per-domain count check.  Any failure
        degrades permanently (until reset/add_domain) to the legacy
        scan — the table is an optimization, never a semantic change.
        """
        if self._table_broken:
            return False
        if not self._table_dirty:
            return True
        table = self._table
        if table is None:
            table = compile_schedule(self._domain_list)
            if table is None:
                self._table_broken = True
                return False
            self._table = table
        pos = locate_cursor(table, self._domain_list)
        if pos is None:
            self._table_broken = True
            return False
        self._table_base_ps, self._table_cursor = pos
        self._table_dirty = False
        return True

    def add_component(self, component: Component, domain: str) -> None:
        self.domains[domain].add(component)

    def wake(
        self,
        component: Optional[Component] = None,
        domain: Optional[str] = None,
    ) -> None:
        """Re-arm parked components (all, one domain's, or a single one)."""
        if domain is not None:
            self.domains[domain].wake(component)
            return
        for d in self._domain_list:
            d.wake(component)

    def schedule_wakeup(self, time_ps: Union[int, float]) -> None:
        """Register a future time the simulation must not idle-skip past.

        Float times are rounded *up* to the next integer picosecond so a
        wakeup never lands early.  Inserting also drops entries the
        clock has already passed, which keeps the heap bounded on busy
        runs that schedule every arrival (the old list was only pruned
        while idle-skipping, so it grew without bound under load).
        """
        t = time_ps if isinstance(time_ps, int) else math.ceil(time_ps)
        heap = self._wakeups
        now = self.time_ps
        while heap and heap[0] < now:
            heapq.heappop(heap)
        if t >= now:
            # A wakeup at exactly *now* is kept: work that becomes ready
            # at the current instant must still wake an idle run (the
            # next idle check fires it and the following step runs it).
            heapq.heappush(heap, t)

    @property
    def time_seconds(self) -> float:
        return self.time_ps / PS_PER_SECOND

    def _earliest_domain(self) -> ClockDomain:
        """The domain holding the next edge; ties go to the first registered."""
        domains = self._domain_list
        best = domains[0]
        best_edge = best.edge_ps(best.cycle + 1)
        for i in range(1, len(domains)):
            d = domains[i]
            e = d.edge_ps(d.cycle + 1)
            if e < best_edge:
                best, best_edge = d, e
        return best

    def step(self) -> None:
        """Advance global time to the earliest next clock edge and tick it.

        Simultaneous edges tie-break by domain registration order.  The
        normal path reads the next (domain, edge time) pair straight
        from the compiled schedule table — two array indexes — instead
        of re-deriving the interleaving with a rational-arithmetic scan
        over every domain; the scan remains as the fallback whenever no
        table applies.
        """
        domains = self._domain_list
        if not domains:
            raise RuntimeError("no clock domains registered")
        if self._table_sync():
            table = self._table
            cur = self._table_cursor
            if cur == table.slots:
                self._table_base_ps += table.window_ps
                cur = 0
            self.time_ps = self._table_base_ps + table.slot_offset_ps[cur]
            self._table_cursor = cur + 1
            domains[table.slot_domain[cur]].tick()
            return
        best = domains[0]
        best_edge = best.edge_ps(best.cycle + 1)
        for i in range(1, len(domains)):
            d = domains[i]
            e = d.edge_ps(d.cycle + 1)
            if e < best_edge:
                best, best_edge = d, e
        self.time_ps = best_edge
        best.tick()

    def run_cycles(self, n: int, domain: Optional[str] = None) -> None:
        """Run exactly ``n`` cycles of ``domain`` (ticking others in step).

        With a single domain this is a tight loop; with several, other
        domains are ticked whenever their edges fall earlier.  Either
        way the finishing time is the exact integer edge time — the same
        value ``n`` individual ``step()`` calls land on.
        """
        if domain is None:
            if len(self.domains) != 1:
                raise ValueError("domain must be named when several exist")
            domain = next(iter(self.domains))
        d = self.domains[domain]
        target = d.cycle + n
        if len(self.domains) == 1:
            # Batch-drain when every component supports it; falls back
            # to the per-cycle tick loop inside.  Cycles moved without
            # the cursor, so the table resyncs on next use.
            d.tick_batch(n)
            self.time_ps = d.edge_ps(d.cycle)
            self._table_dirty = True
            return
        if self._table_sync():
            # Multi-domain: walk the compiled slot table directly
            # instead of re-scanning every domain per edge via step().
            table = self._table
            slots = table.slots
            slot_domain = table.slot_domain
            slot_offset = table.slot_offset_ps
            window = table.window_ps
            base = self._table_base_ps
            cur = self._table_cursor
            domains = self._domain_list
            while d.cycle < target:
                if cur == slots:
                    base += window
                    cur = 0
                self.time_ps = base + slot_offset[cur]
                nxt = domains[slot_domain[cur]]
                cur += 1
                nxt.tick()
            self._table_base_ps = base
            self._table_cursor = cur
            return
        while d.cycle < target:
            self.step()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time_ps: Optional[Union[int, float]] = None,
        max_steps: int = 100_000_000,
    ) -> bool:
        """Run until ``predicate()`` is true.

        Returns True if the predicate fired, False if the run stopped on
        the time/step bound or because everything went idle with no
        scheduled wakeups.  When all components are idle, time jumps to
        the next scheduled wakeup instead of simulating empty cycles.
        """
        steps = 0
        domains = self._domain_list
        while not predicate():
            if max_time_ps is not None and self.time_ps >= max_time_ps:
                return False
            if steps >= max_steps:
                return False
            busy = False
            for d in domains:
                if d.busy():
                    busy = True
                    break
            if not busy:
                if not self._skip_to_next_wakeup(max_time_ps):
                    return False
            self.step()
            steps += 1
        return True

    def _skip_to_next_wakeup(
        self, max_time_ps: Optional[Union[int, float]]
    ) -> bool:
        """Jump an all-idle simulation to its next scheduled wakeup.

        Returns True when the caller should keep stepping (a wakeup was
        reached, or fired at the current instant), False when the run is
        over — no wakeup pending, or the next one lies at/past
        ``max_time_ps``.  In the clamped case time lands exactly on
        ``ceil(max_time_ps)`` with every domain on its last edge
        strictly before it and nothing woken: no edge at or past the
        bound is ever ticked on the idle path, and a later run resumes
        by crossing the first edge at or after the bound.
        """
        heap = self._wakeups
        now = self.time_ps
        while heap and heap[0] < now:
            heapq.heappop(heap)
        if not heap:
            return False
        target = heap[0]
        if target <= now:
            # Work became ready at exactly the current instant: consume
            # the entry (and duplicates), wake everything, and let the
            # caller's next step() run the first following edge.
            while heap and heap[0] <= now:
                heapq.heappop(heap)
            for domain in self._domain_list:
                domain.wake()
            return True
        if max_time_ps is not None:
            bound = math.ceil(max_time_ps)
            if bound <= target:
                # The wakeup is outside this run's window.  Land on the
                # bound without waking or ticking anything; the wakeup
                # stays queued for a later, longer run.
                for domain in self._domain_list:
                    k = domain.last_cycle_before(bound)
                    if k > domain.cycle:
                        domain.cycle = k
                self._table_dirty = True
                if bound > self.time_ps:
                    self.time_ps = bound
                return False
        # Land every domain on its last edge strictly before the target,
        # so the next step() ticks the first edge at or after it: a
        # wakeup scheduled exactly on an edge fires ON that edge.  The
        # served entry (and duplicates) is consumed here — pruning no
        # longer drops entries at the current time, so leaving it would
        # re-fire it on the next idle check.
        while heap and heap[0] <= target:
            heapq.heappop(heap)
        for domain in self._domain_list:
            k = domain.last_cycle_before(target)
            if k > domain.cycle:
                domain.cycle = k
            # Whatever was parked may receive work at the wakeup.
            domain.wake()
        self._table_dirty = True
        if target > self.time_ps:
            self.time_ps = target
        return True

    def run_until_time_ps(self, deadline_ps: int) -> None:
        """Tick every edge strictly before ``deadline_ps``, in order.

        On return every domain sits on its last edge before the
        deadline, so the very next :meth:`step` crosses the first edge
        at or after it — the same landing contract as a scheduled
        wakeup.  This is the primitive sharded runs slice time with:
        a bounded window of simulation with an exact, replayable stop.

        The slot table makes the slice loop a cursor walk with one
        integer compare per edge; slicing stays cycle-exact because the
        table reproduces the scan's edge order (including the
        registration-order tie-break), so lockstep epochs tick the same
        edges in the same order as an unsliced run.
        """
        if self._table_sync():
            table = self._table
            slots = table.slots
            slot_domain = table.slot_domain
            slot_offset = table.slot_offset_ps
            window = table.window_ps
            base = self._table_base_ps
            cur = self._table_cursor
            domains = self._domain_list
            while True:
                if cur == slots:
                    base += window
                    cur = 0
                t = base + slot_offset[cur]
                if t >= deadline_ps:
                    break
                self.time_ps = t
                nxt = domains[slot_domain[cur]]
                cur += 1
                nxt.tick()
            self._table_base_ps = base
            self._table_cursor = cur
            return
        while True:
            best = self._earliest_domain()
            if best.edge_ps(best.cycle + 1) >= deadline_ps:
                return
            self.step()

    def run_lockstep(
        self,
        epoch_ps: int,
        barrier: Callable[[int, int], None],
        epochs: int,
    ) -> None:
        """Advance in fixed epochs, calling ``barrier`` between them.

        Epoch ``e`` simulates every edge in ``[e*epoch_ps,
        (e+1)*epoch_ps)`` and then calls ``barrier(e, boundary_ps)`` —
        the hook a sharded run uses to exchange cross-shard traffic
        while all shards sit at the same boundary.  Slicing is
        cycle-exact: the edges ticked (and their order) are identical
        to an unsliced run, because epochs only bound *when* the loop
        pauses, never which edge comes next.  Epochs are measured from
        the current time, so a partially-advanced simulator locksteps
        from where it is.
        """
        if epoch_ps <= 0:
            raise ValueError(f"epoch_ps must be positive, got {epoch_ps}")
        origin = self.time_ps
        for epoch in range(epochs):
            boundary = origin + (epoch + 1) * epoch_ps
            self.run_until_time_ps(boundary)
            barrier(epoch, boundary)

    def reset(self) -> None:
        self.time_ps = 0
        self._wakeups.clear()
        # The compiled table stays valid (same domains); only the
        # cursor must resync, and a broken table gets a fresh chance.
        self._table_base_ps = 0
        self._table_cursor = 0
        self._table_dirty = True
        self._table_broken = False
        for domain in self._domain_list:
            domain.reset()
