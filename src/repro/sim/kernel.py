"""Cycle-driven simulation kernel with multiple clock domains.

FtEngine runs most logic at 250 MHz while the network-facing modules (ARP,
ICMP, packet generator, RX parser) run at 322 MHz (the Ethernet IP clock).
The kernel keeps global time in **picoseconds** and advances whichever
domain has the earliest next edge, so mixed-frequency models stay in step.

Two usage styles are supported:

* ``run_cycles`` — tight loop over a single domain, used by the
  micro-architectural experiments (Figs 2, 15, 16b) where every cycle does
  work.
* ``run_until`` — run until a predicate is true or every component reports
  idle, with idle-skip to the next scheduled wakeup.  Used by functional
  end-to-end runs where long stretches are quiet (e.g. waiting for an RTO).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .component import Component

PS_PER_SECOND = 1_000_000_000_000


class ClockDomain:
    """A clock with a frequency; owns the components ticked on its edges."""

    def __init__(self, name: str, freq_hz: float) -> None:
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        self.name = name
        self.freq_hz = freq_hz
        self.period_ps = PS_PER_SECOND / freq_hz
        self.cycle = 0
        self.components: List[Component] = []

    @property
    def next_edge_ps(self) -> float:
        return (self.cycle + 1) * self.period_ps

    def tick(self) -> None:
        """Advance this domain by one cycle, ticking components in order."""
        self.cycle += 1
        for component in self.components:
            component.tick()

    def busy(self) -> bool:
        return any(component.busy() for component in self.components)

    def reset(self) -> None:
        self.cycle = 0
        for component in self.components:
            component.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mhz = self.freq_hz / 1e6
        return f"<ClockDomain {self.name!r} {mhz:.0f}MHz cycle={self.cycle}>"


class Simulator:
    """Multi-domain cycle simulator keeping global picosecond time."""

    def __init__(self) -> None:
        self.domains: Dict[str, ClockDomain] = {}
        self.time_ps = 0.0
        self._wakeups: List[float] = []

    def add_domain(self, name: str, freq_hz: float) -> ClockDomain:
        if name in self.domains:
            raise ValueError(f"duplicate clock domain {name!r}")
        domain = ClockDomain(name, freq_hz)
        self.domains[name] = domain
        return domain

    def add_component(self, component: Component, domain: str) -> None:
        self.domains[domain].components.append(component)

    def schedule_wakeup(self, time_ps: float) -> None:
        """Register a future time the simulation must not idle-skip past."""
        self._wakeups.append(time_ps)

    @property
    def time_seconds(self) -> float:
        return self.time_ps / PS_PER_SECOND

    def _earliest_domain(self) -> ClockDomain:
        return min(self.domains.values(), key=lambda d: d.next_edge_ps)

    def step(self) -> None:
        """Advance global time to the earliest next clock edge and tick it."""
        if not self.domains:
            raise RuntimeError("no clock domains registered")
        domain = self._earliest_domain()
        self.time_ps = domain.next_edge_ps
        domain.tick()

    def run_cycles(self, n: int, domain: Optional[str] = None) -> None:
        """Run exactly ``n`` cycles of ``domain`` (ticking others in step).

        With a single domain this is a tight loop; with several, other
        domains are ticked whenever their edges fall earlier.
        """
        if domain is None:
            if len(self.domains) != 1:
                raise ValueError("domain must be named when several exist")
            domain = next(iter(self.domains))
        target = self.domains[domain].cycle + n
        if len(self.domains) == 1:
            d = self.domains[domain]
            for _ in range(n):
                d.tick()
            self.time_ps = d.cycle * d.period_ps
            return
        while self.domains[domain].cycle < target:
            self.step()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time_ps: Optional[float] = None,
        max_steps: int = 100_000_000,
    ) -> bool:
        """Run until ``predicate()`` is true.

        Returns True if the predicate fired, False if the run stopped on
        the time/step bound or because everything went idle with no
        scheduled wakeups.  When all components are idle, time jumps to
        the next scheduled wakeup instead of simulating empty cycles.
        """
        steps = 0
        while not predicate():
            if max_time_ps is not None and self.time_ps >= max_time_ps:
                return False
            if steps >= max_steps:
                return False
            if not any(d.busy() for d in self.domains.values()):
                if not self._skip_to_next_wakeup(max_time_ps):
                    return False
            self.step()
            steps += 1
        return True

    def _skip_to_next_wakeup(self, max_time_ps: Optional[float]) -> bool:
        self._wakeups = [t for t in self._wakeups if t > self.time_ps]
        if not self._wakeups:
            return False
        target = min(self._wakeups)
        if max_time_ps is not None:
            target = min(target, max_time_ps)
        # Land every domain on its last edge before the target so the next
        # step() crosses the wakeup boundary.
        for domain in self.domains.values():
            domain.cycle = max(domain.cycle, int(target / domain.period_ps))
        self.time_ps = max(self.time_ps, target)
        return True

    def reset(self) -> None:
        self.time_ps = 0.0
        self._wakeups.clear()
        for domain in self.domains.values():
            domain.reset()
