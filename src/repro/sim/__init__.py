"""Cycle-level simulation kernel: the hardware substrate FtEngine runs on.

The paper prototypes FtEngine on a Xilinx U280; we substitute a
cycle-driven simulator (the paper itself uses cycle-accurate simulation
for its versatility experiments, section 5.4).  Exposes clock domains,
clocked components, FIFOs with backpressure, pipelines with
latency/initiation interval, and BRAM/DRAM/HBM/CAM/LUT memory models.
"""

from .component import Component
from .fifo import Fifo
from .kernel import ClockDomain, Simulator, PS_PER_SECOND
from .memory import CAM, DRAMModel, DualPortSRAM, PartitionedLUT
from .pipeline import Pipeline
from .stats import Counters, Histogram, RateMeter

__all__ = [
    "CAM",
    "ClockDomain",
    "Component",
    "Counters",
    "DRAMModel",
    "DualPortSRAM",
    "Fifo",
    "Histogram",
    "PS_PER_SECOND",
    "PartitionedLUT",
    "Pipeline",
    "RateMeter",
    "Simulator",
]
