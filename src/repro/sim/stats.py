"""Measurement utilities: counters, rate meters and latency histograms.

Every experiment reports either a rate (requests/s, events/s, Gbps) or a
latency percentile (Fig 12's median and p99), so these three classes are
the backbone of the whole evaluation harness.
"""

from __future__ import annotations

import math
from typing import Dict, List


class Counters:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self._values!r})"


class RateMeter:
    """Converts an event count over simulated time into a rate.

    Rates are reported against *simulated* time (picoseconds from the
    kernel), never wall-clock time, because the simulator's speed is
    irrelevant to the modelled hardware's throughput.
    """

    def __init__(self, name: str = "rate") -> None:
        self.name = name
        self.count = 0
        self.units = 0.0  # e.g. bytes, for throughput meters

    def record(self, units: float = 1.0) -> None:
        self.count += 1
        self.units += units

    def per_second(self, elapsed_ps: float) -> float:
        """Events per simulated second.

        A zero (or negative, or non-finite) measurement window has no
        meaningful rate; it reports 0.0 rather than raising or returning
        inf, so aggregation over many windows never blows up.
        """
        if not elapsed_ps > 0 or math.isinf(elapsed_ps):
            return 0.0
        return self.count / (elapsed_ps / 1e12)

    def units_per_second(self, elapsed_ps: float) -> float:
        if not elapsed_ps > 0 or math.isinf(elapsed_ps):
            return 0.0
        return self.units / (elapsed_ps / 1e12)

    def gbps(self, elapsed_ps: float) -> float:
        """Throughput in gigabits per second, treating units as bytes."""
        return self.units_per_second(elapsed_ps) * 8 / 1e9


class Histogram:
    """Sample store with percentile queries (median, p99, ...)."""

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = False

    @property
    def samples(self) -> List[float]:
        """The raw samples, sorted (for merging histograms)."""
        self._ensure_sorted()
        return list(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100].

        An empty histogram has no percentiles: the answer is ``nan``
        (the value every report renders as "no data"), not an exception
        — a run where one traffic class saw zero completions must still
        produce a result table.  Out-of-range ``p`` is still a bug in
        the caller and raises.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return math.nan
        self._ensure_sorted()
        if len(self._samples) == 1:
            return self._samples[0]
        rank = p / 100 * (len(self._samples) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return self._samples[low]
        frac = rank - low
        return self._samples[low] * (1 - frac) + self._samples[high] * frac

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> float:
        if not self._samples:
            return math.nan
        return max(self._samples)
