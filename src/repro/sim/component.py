"""Base class for clocked hardware components.

Every block of FtEngine (event handler, TCB manager, FPU, scheduler, ...)
is modelled as a :class:`Component` attached to a clock domain.  The
simulation kernel calls :meth:`Component.tick` once per cycle of that
domain, in the registration order (which callers arrange to follow the
dataflow direction so that single-phase simulation is deterministic).
"""

from __future__ import annotations


class Component:
    """A clocked component with a per-cycle ``tick`` callback.

    Subclasses override :meth:`tick` to do one cycle of work and
    :meth:`busy` to report whether they still hold in-flight state.  The
    kernel uses ``busy`` two ways:

    * **idle-skip** — when every component of a domain is idle, whole
      stretches of cycles are skipped without simulating them;
    * **parking** — a component whose ``busy()`` goes False after a tick
      is removed from the tick list entirely (the busy-set) and not
      ticked again until woken, either explicitly via
      ``Simulator.wake`` or implicitly when the kernel skips to a
      scheduled wakeup.  On wake its ``cycle`` counter is
      fast-forwarded to the domain's, so cycle-relative logic stays
      aligned.  A producer that fills a parked peer's queue must wake
      it (or the peer must stay ``busy`` while anything can arrive) —
      the default always-busy ``busy()`` opts out of both mechanisms.
    """

    #: Components implementing an exact vectorized :meth:`drain` set
    #: this True; schedulers check it before replacing ``n`` ``tick()``
    #: calls with one ``drain(n)``.
    supports_drain = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.cycle = 0

    def tick(self) -> None:
        """Advance one clock cycle.  Subclasses do their work here."""
        self.cycle += 1

    def drain(self, n: int) -> None:
        """Advance ``n`` cycles in one call (the batch-drain hook).

        Contract for overrides (advertised via ``supports_drain``):
        given that no external input arrives during the window —
        guaranteed by the caller, since nothing else runs while a batch
        drains — ``drain(n)`` must leave the component in exactly the
        state ``n`` consecutive ``tick()`` calls would, and ticking
        while ``busy()`` is False must be a no-op apart from the cycle
        counter (parking may be deferred to the end of the batch).
        Typical overrides coalesce FIFO runs, count down pipeline
        retires, or pop timer batches over preallocated int arrays
        instead of dispatching per-cycle method calls.  The default
        simply loops ``tick()`` so unconverted components keep working.
        """
        for _ in range(n):
            self.tick()

    def busy(self) -> bool:
        """Return True while the component holds in-flight work.

        The default is conservative (never idle-skippable); cheap
        components that can be skipped override this.
        """
        return True

    def reset(self) -> None:
        """Return to the post-construction state."""
        self.cycle = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} cycle={self.cycle}>"
