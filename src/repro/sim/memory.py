"""Memory models: FPGA BRAM, on-board DRAM/HBM, CAM, partitioned LUTs.

These model the *timing and port* behaviour the paper's design depends on:

* BRAM is dual-ported, so the FPC's two tables provide four reads and four
  writes per two cycles (§4.2.3);
* DDR4 provides 38 GB/s and HBM 460 GB/s (§4.7), which is what throttles
  TCB swapping past 1024 flows (Fig 13);
* the CAM maps global flow IDs to local TCB-table indices (§4.4.2);
* the location LUT is built from logic LUTs partitioned into groups so the
  scheduler can route several events per cycle (§4.4.2).
"""

from __future__ import annotations

from typing import Any, Dict, Generic, List, Optional, TypeVar

V = TypeVar("V")

GIB = 1 << 30


class DualPortSRAM(Generic[V]):
    """A BRAM-like store allowing two accesses per port pair per cycle.

    Functionally it is an addressable array; the port discipline is
    tracked as statistics (``reads``/``writes`` per cycle peak) rather
    than enforced by exceptions, because the FPC schedules its accesses
    statically (§4.2.3) and the tests assert the schedule stays within
    the port budget.
    """

    PORTS = 2

    def __init__(self, depth: int, name: str = "sram") -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.depth = depth
        self.name = name
        self._data: List[Optional[V]] = [None] * depth
        self.reads = 0
        self.writes = 0
        self._cycle_accesses: Dict[int, int] = {}
        self.max_accesses_per_cycle = 0

    def _track(self, cycle: Optional[int]) -> None:
        if cycle is None:
            return
        count = self._cycle_accesses.get(cycle, 0) + 1
        self._cycle_accesses = {cycle: count}
        if count > self.max_accesses_per_cycle:
            self.max_accesses_per_cycle = count

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.depth:
            raise IndexError(f"{self.name}: address {addr} out of range 0..{self.depth - 1}")

    def read(self, addr: int, cycle: Optional[int] = None) -> Optional[V]:
        self._check(addr)
        self.reads += 1
        self._track(cycle)
        return self._data[addr]

    def write(self, addr: int, value: V, cycle: Optional[int] = None) -> None:
        self._check(addr)
        self.writes += 1
        self._track(cycle)
        self._data[addr] = value

    def clear(self, addr: int) -> None:
        self._check(addr)
        self._data[addr] = None


class DRAMModel:
    """A bandwidth/latency model of an on-board memory channel.

    Transfers are serialized on the channel: a request issued at time
    ``now_ps`` completes at ``max(now, busy_until) + latency + n/bw``.
    This is the mechanism behind Fig 13's DRAM-throttled region — each
    echo request past 1024 flows costs a TCB swap-out plus swap-in.
    """

    def __init__(
        self,
        bandwidth_bytes_per_s: float,
        latency_ns: float = 100.0,
        per_request_overhead_ns: float = 0.0,
        name: str = "dram",
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.latency_ps = latency_ns * 1000.0
        # Row-activation / channel-arbitration cost charged per access;
        # this is what makes small random TCB swaps much slower than the
        # peak sequential bandwidth (Fig 13's DRAM-throttled region).
        self.per_request_overhead_ps = per_request_overhead_ns * 1000.0
        self.name = name
        self.busy_until_ps = 0.0
        self.bytes_transferred = 0
        self.requests = 0
        self._store: Dict[int, Any] = {}

    @classmethod
    def ddr4(cls) -> "DRAMModel":
        """The paper's DDR4 option: 38 GB/s peak (§4.7), single channel."""
        return cls(38 * GIB, latency_ns=100.0, per_request_overhead_ns=25.0, name="ddr4")

    @classmethod
    def hbm(cls) -> "DRAMModel":
        """The paper's HBM option: 460 GB/s across many channels (§4.7).

        HBM2's 16+ pseudo-channels hide per-access overheads for the
        engine's one-TCB-per-cycle access pattern, so the modelled
        per-request overhead is near zero.
        """
        return cls(460 * GIB, latency_ns=120.0, per_request_overhead_ns=2.0, name="hbm")

    def transfer(self, nbytes: int, now_ps: float) -> float:
        """Account a transfer of ``nbytes``; returns its completion time.

        The channel is occupied for overhead + nbytes/bandwidth; the
        returned completion additionally includes the access latency.
        """
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        start = max(now_ps, self.busy_until_ps)
        occupancy = (
            self.per_request_overhead_ps
            + nbytes / self.bandwidth_bytes_per_s * 1e12
        )
        self.busy_until_ps = start + occupancy
        self.bytes_transferred += nbytes
        self.requests += 1
        return start + occupancy + self.latency_ps

    # Functional backing store (the TCB home location).
    def store(self, addr: int, value: Any) -> None:
        self._store[addr] = value

    def load(self, addr: int) -> Any:
        return self._store.get(addr)

    def utilization(self, elapsed_ps: float) -> float:
        """Fraction of the channel's bandwidth consumed over ``elapsed_ps``."""
        if elapsed_ps <= 0:
            return 0.0
        used = self.bytes_transferred / self.bandwidth_bytes_per_s * 1e12
        return min(1.0, used / elapsed_ps)


class CAM(Generic[V]):
    """Content-addressable memory: key -> slot index, bounded capacity.

    The paper implements it as a comparator array plus a binary log
    module and relies on the scheduler's routing guarantee that lookups
    always hit exactly one entry (§4.4.2); :meth:`lookup` mirrors that by
    raising on a miss while :meth:`try_lookup` is the forgiving probe.
    """

    def __init__(self, capacity: int, name: str = "cam") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._slots: Dict[Any, int] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: Any) -> bool:
        return key in self._slots

    @property
    def full(self) -> bool:
        return not self._free

    def insert(self, key: Any) -> int:
        """Bind ``key`` to a free slot; returns the slot index."""
        if key in self._slots:
            raise KeyError(f"{self.name}: duplicate key {key!r}")
        if not self._free:
            raise OverflowError(f"{self.name}: CAM full ({self.capacity} entries)")
        slot = self._free.pop()
        self._slots[key] = slot
        return slot

    def lookup(self, key: Any) -> int:
        if key not in self._slots:
            raise KeyError(
                f"{self.name}: lookup miss for {key!r} — the scheduler must "
                "only route events whose TCB lives here (§4.3.2)"
            )
        return self._slots[key]

    def try_lookup(self, key: Any) -> Optional[int]:
        return self._slots.get(key)

    def remove(self, key: Any) -> int:
        slot = self.lookup(key)
        del self._slots[key]
        self._free.append(slot)
        return slot

    def keys(self) -> List[Any]:
        return list(self._slots)


def _stable_partition(key: Any) -> int:
    """PYTHONHASHSEED-free hash for partition selection.

    Matches builtin ``hash()`` for the small non-negative ints flow ids
    use — so group assignments (and the access stats benches read off
    them) are unchanged — while str/bytes/tuple keys hash identically
    across worker processes.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        value = 0xCBF29CE484222325
        for byte in key:
            value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return value
    if isinstance(key, tuple):
        value = 0x345678
        for item in key:
            value = (value * 1000003 ^ _stable_partition(item))
            value &= 0xFFFFFFFFFFFFFFFF
        return value
    raise TypeError(
        f"no stable hash for LUT key type {type(key).__name__}; use "
        "int/str/bytes/tuple keys"
    )


class PartitionedLUT:
    """The location LUT built from logic LUTs, hash-partitioned into groups.

    Each group supports one access per cycle, so ``groups`` accesses per
    cycle in total; eight FPCs each accepting an event every two cycles
    need four partitions (§4.4.2).  Access-rate accounting is kept as
    statistics for the benches.
    """

    def __init__(self, groups: int, name: str = "location-lut") -> None:
        if groups <= 0:
            raise ValueError(f"groups must be positive, got {groups}")
        self.groups = groups
        self.name = name
        self._tables: List[Dict[Any, Any]] = [{} for _ in range(groups)]
        self.accesses = 0

    def _group_of(self, key: Any) -> Dict[Any, Any]:
        return self._tables[_stable_partition(key) % self.groups]

    def __contains__(self, key: Any) -> bool:
        return key in self._group_of(key)

    def get(self, key: Any, default: Any = None) -> Any:
        self.accesses += 1
        return self._group_of(key).get(key, default)

    def set(self, key: Any, value: Any) -> None:
        self.accesses += 1
        self._group_of(key)[key] = value

    def delete(self, key: Any) -> None:
        self.accesses += 1
        self._group_of(key).pop(key, None)

    @property
    def accesses_per_cycle(self) -> int:
        """Peak routing throughput in lookups per cycle."""
        return self.groups

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables)
