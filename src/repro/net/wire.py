"""The simulated wire: serialization, propagation, loss and reordering.

Connects two FtEngines (or an engine and a host NIC model) back to back,
as the paper's testbed does (§5).  Each direction serializes frames at
the link rate, delays them by the propagation latency, and optionally
applies fault injection — drops and reorders — which is how the Fig 14
congestion-window experiments inject "occasional packet drops".
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Callable, List, Optional, Tuple

from .ethernet import EthernetFrame
from .link import Link, LINK_100G

FaultFn = Callable[[EthernetFrame, int], bool]
DelayFn = Callable[[EthernetFrame, int], float]


def derive_seed(seed: int, label: str) -> int:
    """A stable sub-seed for one named RNG stream under a master seed.

    Content-hash based (not ``hash()``, which is salted per process), so
    every stream — each wire direction's drop/reorder RNG, each traffic
    class's arrival and size RNGs — is reproducible across runs from one
    top-level seed, and adding a new stream never perturbs the others.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class LossPattern:
    """Factory for drop predicates used in fault-injection experiments."""

    @staticmethod
    def none() -> FaultFn:
        return lambda frame, index: False

    @staticmethod
    def every_nth(n: int, start: int = 0) -> FaultFn:
        """Drop packet indices start, start+n, start+2n, ..."""
        if n <= 0:
            raise ValueError("n must be positive")
        return lambda frame, index: index >= start and (index - start) % n == 0

    @staticmethod
    def probability(p: float, seed: int = 1) -> FaultFn:
        """Drop each data-bearing frame independently with probability p."""
        rng = random.Random(seed)
        return lambda frame, index: rng.random() < p

    @staticmethod
    def explicit(indices: List[int]) -> FaultFn:
        targets = set(indices)
        return lambda frame, index: index in targets


class DelayPattern:
    """Factory for extra-delay functions (reordering/jitter injection).

    A delayed frame can arrive after frames transmitted later, which is
    how reordering is injected: the wire itself always serializes FIFO.
    """

    @staticmethod
    def none() -> Optional[DelayFn]:
        return None

    @staticmethod
    def reorder(p: float, delay_us: float = 10.0, seed: int = 1) -> DelayFn:
        """Hold each frame back by ``delay_us`` with probability ``p``."""
        rng = random.Random(seed)
        delay_ps = delay_us * 1e6
        return lambda frame, index: delay_ps if rng.random() < p else 0.0

    @staticmethod
    def jitter(max_us: float, seed: int = 1) -> DelayFn:
        """Uniform random extra delay in [0, max_us] per frame."""
        rng = random.Random(seed)
        return lambda frame, index: rng.random() * max_us * 1e6


class _Direction:
    """One direction of the duplex wire."""

    def __init__(self, link: Link, drop_fn: FaultFn, delay_fn: Optional[DelayFn]) -> None:
        self.link = link
        self.drop_fn = drop_fn
        self.delay_fn = delay_fn
        self.next_free_ps = 0.0
        self._in_flight: List[Tuple[float, int, EthernetFrame]] = []
        self._sequence = 0
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0

    def transmit(self, frame: EthernetFrame, now_ps: float) -> None:
        index = self._sequence
        self._sequence += 1
        if self.drop_fn(frame, index):
            self.frames_dropped += 1
            return
        start = max(now_ps, self.next_free_ps)
        tx_time = self.link.serialization_time_ps(frame.wire_bytes)
        self.next_free_ps = start + tx_time
        arrival = self.next_free_ps + self.link.propagation_delay_us * 1e6
        if self.delay_fn is not None:
            arrival += max(0.0, self.delay_fn(frame, index))
        heapq.heappush(self._in_flight, (arrival, index, frame))
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes

    def deliver_due(self, now_ps: float) -> List[EthernetFrame]:
        frames: List[EthernetFrame] = []
        while self._in_flight and self._in_flight[0][0] <= now_ps:
            frames.append(heapq.heappop(self._in_flight)[2])
        return frames

    def next_arrival_ps(self) -> Optional[float]:
        return self._in_flight[0][0] if self._in_flight else None

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


class WirePort:
    """One endpoint's handle: send frames out, poll frames in."""

    def __init__(self, outbound: _Direction, inbound: _Direction) -> None:
        self._outbound = outbound
        self._inbound = inbound

    def send(self, frame: EthernetFrame, now_ps: float) -> None:
        self._outbound.transmit(frame, now_ps)

    def poll(self, now_ps: float) -> List[EthernetFrame]:
        return self._inbound.deliver_due(now_ps)

    def next_arrival_ps(self) -> Optional[float]:
        return self._inbound.next_arrival_ps()

    @property
    def pending(self) -> int:
        return self._inbound.in_flight + self._outbound.in_flight


class Wire:
    """A duplex link between two endpoints, ``a`` and ``b``."""

    def __init__(
        self,
        link: Link = LINK_100G,
        drop_a_to_b: Optional[FaultFn] = None,
        drop_b_to_a: Optional[FaultFn] = None,
        delay_a_to_b: Optional[DelayFn] = None,
        delay_b_to_a: Optional[DelayFn] = None,
    ) -> None:
        self.link = link
        self._ab = _Direction(link, drop_a_to_b or LossPattern.none(), delay_a_to_b)
        self._ba = _Direction(link, drop_b_to_a or LossPattern.none(), delay_b_to_a)
        self.port_a = WirePort(outbound=self._ab, inbound=self._ba)
        self.port_b = WirePort(outbound=self._ba, inbound=self._ab)

    @classmethod
    def impaired(
        cls,
        seed: int,
        drop_probability: float = 0.0,
        reorder_probability: float = 0.0,
        reorder_delay_us: float = 10.0,
        link: Link = LINK_100G,
    ) -> "Wire":
        """A duplex wire with seeded loss/reordering on both directions.

        One top-level ``seed`` determines every impairment decision; the
        four underlying RNG streams are derived per direction and per
        fault kind with :func:`derive_seed`, so identical seeds replay
        identical drop/reorder patterns bit for bit.
        """
        def drops(label: str) -> Optional[FaultFn]:
            if drop_probability <= 0:
                return None
            return LossPattern.probability(
                drop_probability, seed=derive_seed(seed, label)
            )

        def delays(label: str) -> Optional[DelayFn]:
            if reorder_probability <= 0:
                return None
            return DelayPattern.reorder(
                reorder_probability, reorder_delay_us,
                seed=derive_seed(seed, label),
            )

        return cls(
            link=link,
            drop_a_to_b=drops("drop-a2b"),
            drop_b_to_a=drops("drop-b2a"),
            delay_a_to_b=delays("reorder-a2b"),
            delay_b_to_a=delays("reorder-b2a"),
        )

    @property
    def in_flight(self) -> int:
        return self._ab.in_flight + self._ba.in_flight

    @property
    def frames_sent(self) -> int:
        return self._ab.frames_sent + self._ba.frames_sent

    @property
    def frames_dropped(self) -> int:
        return self._ab.frames_dropped + self._ba.frames_dropped

    @property
    def bytes_sent(self) -> int:
        return self._ab.bytes_sent + self._ba.bytes_sent

    def next_arrival_ps(self) -> Optional[float]:
        times = [
            t
            for t in (self._ab.next_arrival_ps(), self._ba.next_arrival_ps())
            if t is not None
        ]
        return min(times) if times else None
