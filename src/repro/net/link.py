"""Link-rate arithmetic for the 100 Gbps testbed (§5).

The paper's goodput numbers follow directly from per-packet overheads:
every packet pays 78 B — 40 B TCP/IP headers, 18 B Ethernet header,
8 B preamble and 12 B inter-frame gap — so, e.g., 128 B payloads cap
goodput at 100 Gbps x 128/(128+78) = 62.1 Gbps (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-packet overhead in bytes (§5.1).
PER_PACKET_OVERHEAD = 78

GBPS = 1e9  # bits per second per Gbps


@dataclass(frozen=True)
class Link:
    """A full-duplex point-to-point link."""

    bandwidth_gbps: float = 100.0
    propagation_delay_us: float = 2.0

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * GBPS / 8

    def wire_bytes(self, payload_bytes: int) -> int:
        """Total bytes on the wire for one packet's payload."""
        return payload_bytes + PER_PACKET_OVERHEAD

    def serialization_time_ps(self, wire_bytes: int) -> float:
        return wire_bytes / self.bytes_per_second * 1e12

    def max_packets_per_second(self, payload_bytes: int) -> float:
        """Packet rate when the link is saturated with this payload size."""
        return self.bytes_per_second / self.wire_bytes(payload_bytes)

    def max_goodput_gbps(self, payload_bytes: int) -> float:
        """Payload throughput at saturation — the iPerf-visible number."""
        share = payload_bytes / self.wire_bytes(payload_bytes)
        return self.bandwidth_gbps * share


#: The evaluation link (§5): directly connected 100 GbE.
LINK_100G = Link(bandwidth_gbps=100.0, propagation_delay_us=2.0)
