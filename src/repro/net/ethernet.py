"""Ethernet framing for the simulated wire.

FtEngine's network-facing modules exchange Ethernet frames; the wire-
level overhead (header + FCS + preamble + inter-frame gap = 38 B) plus
the 40 B TCP/IP headers give the 78 B per-packet overhead used in the
paper's goodput arithmetic (§5.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

#: Header (14 B) + FCS (4 B) + preamble (8 B) + inter-frame gap (12 B).
FRAME_OVERHEAD = 38
MIN_PAYLOAD = 46

_mac_counter = itertools.count(1)


def make_mac(node_id: int) -> int:
    """A deterministic locally administered MAC for node ``node_id``."""
    return 0x02_00_00_00_00_00 | (node_id & 0xFFFFFFFF)


def mac_to_string(mac: int) -> str:
    return ":".join(f"{(mac >> s) & 0xFF:02x}" for s in range(40, -8, -8))


BROADCAST_MAC = 0xFF_FF_FF_FF_FF_FF


@dataclass
class EthernetFrame:
    """A frame carrying an IPv4 packet, an ARP message, or ICMP bytes."""

    src_mac: int
    dst_mac: int
    ethertype: int
    payload: Any  # TcpSegment / ArpMessage / IcmpMessage / raw bytes
    #: Size on the wire including all framing overhead.
    wire_bytes: int = 0

    def __post_init__(self) -> None:
        if self.wire_bytes == 0:
            payload_len = getattr(self.payload, "wire_length", None)
            if payload_len is not None:
                # TcpSegment.wire_length already includes framing.
                self.wire_bytes = payload_len
            else:
                body = len(self.payload) if hasattr(self.payload, "__len__") else 28
                self.wire_bytes = FRAME_OVERHEAD + max(MIN_PAYLOAD, body)
