"""Network substrate: links, Ethernet frames, and the fault-injecting wire."""

from .ethernet import (
    BROADCAST_MAC,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
    FRAME_OVERHEAD,
    make_mac,
)
from .link import GBPS, LINK_100G, Link, PER_PACKET_OVERHEAD
from .pcap import CapturedPacket, PcapWriter, WireTap
from .wire import LossPattern, Wire, WirePort

__all__ = [
    "BROADCAST_MAC",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "FRAME_OVERHEAD",
    "GBPS",
    "LINK_100G",
    "Link",
    "LossPattern",
    "CapturedPacket",
    "PcapWriter",
    "WireTap",
    "PER_PACKET_OVERHEAD",
    "Wire",
    "WirePort",
    "make_mac",
]
