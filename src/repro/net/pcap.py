"""pcap capture of the simulated wire — open traces in Wireshark/tcpdump.

A :class:`WireTap` wraps a :class:`~repro.net.wire.WirePort` and records
every TCP frame it sends with its simulated timestamp.  Captures
serialize to the classic libpcap format (LINKTYPE_RAW: each record is a
bare IPv4 packet), so standard tooling decodes the reproduction's
traffic — handy for debugging protocol behaviour and for convincing
yourself the generated headers are real.

Typical use::

    testbed = Testbed()
    tap = WireTap.attach(testbed.wire.port_a)
    ... run traffic ...
    tap.save("transfer.pcap")
    print(tap.summary())
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from ..tcp.segment import TcpSegment

#: libpcap magic (microsecond timestamps), version 2.4.
_PCAP_MAGIC = 0xA1B2C3D4
_PCAP_VERSION = (2, 4)
#: LINKTYPE_RAW: packets begin directly with the IPv4 header.
LINKTYPE_RAW = 101


@dataclass
class CapturedPacket:
    """One captured packet: simulated time + raw IPv4 bytes."""

    timestamp_s: float
    data: bytes
    #: Decoded view, kept for summaries (None if undecodable).
    segment: Optional[TcpSegment] = None

    def record_bytes(self) -> bytes:
        seconds = int(self.timestamp_s)
        micros = int((self.timestamp_s - seconds) * 1e6)
        header = struct.pack(
            "<IIII", seconds, micros, len(self.data), len(self.data)
        )
        return header + self.data


class PcapWriter:
    """Accumulates packets and writes a libpcap file."""

    def __init__(self) -> None:
        self.packets: List[CapturedPacket] = []

    def add_segment(self, segment: TcpSegment, timestamp_s: float) -> None:
        self.packets.append(
            CapturedPacket(timestamp_s, segment.to_bytes(), segment)
        )

    def add_raw(self, data: bytes, timestamp_s: float) -> None:
        try:
            segment = TcpSegment.from_bytes(data, verify=False)
        except ValueError:
            segment = None
        self.packets.append(CapturedPacket(timestamp_s, data, segment))

    def to_bytes(self) -> bytes:
        header = struct.pack(
            "<IHHiIII",
            _PCAP_MAGIC,
            _PCAP_VERSION[0],
            _PCAP_VERSION[1],
            0,  # GMT offset
            0,  # sigfigs
            65_535,  # snaplen
            LINKTYPE_RAW,
        )
        return header + b"".join(p.record_bytes() for p in self.packets)

    def save(self, path: str) -> int:
        """Write the capture; returns the number of packets saved."""
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())
        return len(self.packets)

    def summary(self) -> str:
        """A tcpdump-style one-line-per-packet rendering."""
        lines = []
        for packet in self.packets:
            segment = packet.segment
            if segment is None:
                lines.append(f"{packet.timestamp_s * 1e6:10.1f}us  [non-TCP, {len(packet.data)} B]")
                continue
            lines.append(
                f"{packet.timestamp_s * 1e6:10.1f}us  "
                f"{segment.flow_key}  {segment.flag_names():9s} "
                f"seq={segment.seq} ack={segment.ack} "
                f"win={segment.window} len={len(segment.payload)}"
            )
        return "\n".join(lines)


class WireTap:
    """Transparent capture on one wire port's transmit path."""

    def __init__(self, port, time_source=None) -> None:
        self.port = port
        self.writer = PcapWriter()
        self._original_send = port.send
        self._time_source = time_source

    @classmethod
    def attach(cls, port, time_source=None) -> "WireTap":
        """Install the tap; every subsequent send is recorded."""
        tap = cls(port, time_source)

        def tapped_send(frame, now_ps):
            payload = frame.payload
            timestamp = now_ps / 1e12
            if isinstance(payload, TcpSegment):
                tap.writer.add_segment(payload, timestamp)
            elif isinstance(payload, (bytes, bytearray)):
                tap.writer.add_raw(bytes(payload), timestamp)
            tap._original_send(frame, now_ps)

        port.send = tapped_send
        return tap

    def detach(self) -> None:
        self.port.send = self._original_send

    @property
    def packets(self) -> List[CapturedPacket]:
        return self.writer.packets

    def save(self, path: str) -> int:
        return self.writer.save(path)

    def summary(self) -> str:
        return self.writer.summary()
