"""Two-engine testbed: the paper's back-to-back FtEngine setup (§5).

Runs two :class:`FtEngine` instances connected by a :class:`Wire` under
one 250 MHz clock, with idle-skip to the next wire arrival or timer
deadline so long quiet stretches (RTO waits) cost nothing to simulate.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..net.link import LINK_100G, Link
from ..net.wire import Wire
from ..tcp.segment import ip_from_string
from .ftengine import ENGINE_PERIOD_PS, FtEngine, FtEngineConfig


class Testbed:
    """Two directly connected engines plus a run loop."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        config_a: Optional[FtEngineConfig] = None,
        config_b: Optional[FtEngineConfig] = None,
        wire: Optional[Wire] = None,
        link: Link = LINK_100G,
    ) -> None:
        self.wire = wire if wire is not None else Wire(link=link)
        self.engine_a = FtEngine(
            ip=ip_from_string("10.0.0.1"),
            config=config_a or FtEngineConfig(),
            port=self.wire.port_a,
        )
        self.engine_b = FtEngine(
            ip=ip_from_string("10.0.0.2"),
            config=config_b or FtEngineConfig(),
            port=self.wire.port_b,
        )
        self.cycle = 0

    @property
    def time_ps(self) -> int:
        """Exact integer picoseconds (cycle × 4000; see simlint F4T007)."""
        return self.cycle * ENGINE_PERIOD_PS

    @property
    def now_s(self) -> float:
        return self.time_ps / 1e12

    def step(self) -> None:
        """One 250 MHz cycle for both engines."""
        self.cycle += 1
        # Engines keep their own cycle counters aligned with the testbed.
        self.engine_a.cycle = self.cycle - 1
        self.engine_b.cycle = self.cycle - 1
        self.engine_a.tick()
        self.engine_b.tick()

    def _next_wakeup_ps(self) -> Optional[float]:
        candidates = []
        arrival = self.wire.next_arrival_ps()
        if arrival is not None:
            candidates.append(arrival)
        for engine in (self.engine_a, self.engine_b):
            wakeup = engine.next_wakeup_ps()
            if wakeup is not None:
                candidates.append(wakeup)
        future = [t for t in candidates if t > self.time_ps]
        return min(future) if future else None

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_time_s: float = 1.0,
        max_steps: int = 50_000_000,
        wakeup_ps: Optional[Callable[[], Optional[float]]] = None,
        quiet_cycle: Optional[Callable[[], Optional[int]]] = None,
    ) -> bool:
        """Run until ``until()`` holds; returns False on time/step bound.

        With no predicate, runs until everything is idle (all queues
        empty, nothing in flight, no timers pending).  ``wakeup_ps``
        lets a driver announce externally scheduled work (e.g. the next
        open-loop traffic arrival) so idle-skip jumps exactly there
        instead of fast-forwarding in blind chunks past it.

        ``quiet_cycle`` enables the batched loop: it returns the
        earliest cycle at which the ``until`` pump would act (trace
        samples, audits, arrival releases, any advanceable connection),
        or None when the pump must run every cycle.  Combined with both
        engines' :meth:`FtEngine.next_work_cycle` horizons, whole runs
        of busy-but-quiet cycles (FPU pipelines in flight, timers
        pending, frames on the wire) collapse into one
        :meth:`FtEngine.advance_cycles` call.  ``steps`` counts skipped
        cycles so the probe phase (``steps % 8``) and both bounds stay
        aligned with the per-cycle loop — the batched path is
        cycle-exact, which the kernel-equivalence goldens pin.
        """
        max_time_ps = max_time_s * 1e12
        steps = 0
        idle_chunk = 256
        # Skip-attempt backoff: a failed probe during a work burst
        # predicts more failures, so attempts thin out exponentially
        # (capped, so a fresh quiet window is still caught within a few
        # steps).  Attempts are side-effect-free — any subset of valid
        # skips leaves the run cycle-exact — so this is pure cost
        # control, not a semantic knob.
        defer = 0
        backoff = 0
        # First cycle whose top-of-loop time check exits: guarded so
        # batched skips stop exactly where the float compare would.
        cycle_bound = math.ceil(max_time_ps / ENGINE_PERIOD_PS)
        while cycle_bound * ENGINE_PERIOD_PS < max_time_ps:
            cycle_bound += 1
        while cycle_bound > 0 and (cycle_bound - 1) * ENGINE_PERIOD_PS >= max_time_ps:
            cycle_bound -= 1
        # Hot loop: hoist attribute lookups — this loop runs once per
        # simulated cycle under every traffic scenario and lab sweep.
        engine_a = self.engine_a
        engine_b = self.engine_b
        wire = self.wire
        tick_a = engine_a.tick
        tick_b = engine_b.tick
        while True:
            if until is not None and until():
                return True
            if self.cycle * ENGINE_PERIOD_PS >= max_time_ps or steps >= max_steps:
                return False
            # The busy probe costs more than an idle step, so only look
            # for idle-skip opportunities every few steps.  idle_chunk
            # and the idle branch stay strictly on this phase — idle
            # jumps land on probe-phase-dependent cycles, so running
            # them off-phase would diverge from the per-cycle loop.
            busy = False
            attempt = False
            if steps % 8 == 0:
                busy = (
                    engine_a.busy()
                    or engine_b.busy()
                    or wire.in_flight > 0
                )
                if not busy:
                    wakeup = self._next_wakeup_ps()
                    if wakeup_ps is not None:
                        external = wakeup_ps()
                        if external is not None and external > self.time_ps:
                            wakeup = (
                                external
                                if wakeup is None
                                else min(wakeup, external)
                            )
                    if wakeup is None:
                        if until is None:
                            return True  # fully idle and nothing awaited
                        # Idle but a predicate is waiting: fast-forward in
                        # growing chunks so cycle-gated drivers (send
                        # pumps) still run, yet long dead time is cheap.
                        self.cycle += idle_chunk
                        idle_chunk = min(idle_chunk * 2, 1 << 22)
                    else:
                        # Jump both engines to the cycle holding the
                        # wakeup (never past the caller's time bound).
                        target = min(wakeup, max_time_ps)
                        self.cycle = max(
                            self.cycle, math.ceil(target / ENGINE_PERIOD_PS)
                        )
                else:
                    idle_chunk = 256
                    attempt = quiet_cycle is not None
            elif quiet_cycle is not None:
                busy = (
                    engine_a.busy()
                    or engine_b.busy()
                    or wire.in_flight > 0
                )
                # Not-busy iterations between probes are plain ticks in
                # the per-cycle loop too (the idle branch only runs on
                # the probe phase), so they are also collapsible — just
                # capped at the next probe top, where the idle branch
                # must run for real.
                attempt = True
            if attempt and defer > 0:
                defer -= 1
                attempt = False
            if attempt:
                # Batched run: find the first cycle anything — either
                # engine or the pump — acts, and collapse the
                # guaranteed-no-op iterations before it.  Skipped
                # iterations' pumps, bounds checks and ticks are no-ops
                # by construction; counting them straight into
                # cycle/steps keeps the probe phase and both bounds
                # exactly where the per-cycle loop would have them.
                # Engine horizons first: when work is imminent (the
                # common busy-working case) they bail out before the
                # pump's connection scan runs.
                floor = self.cycle + 1
                wa = engine_a.next_work_cycle()
                if wa is None or wa > floor:
                    wb = engine_b.next_work_cycle()
                    if wb is None or wb > floor:
                        limit = quiet_cycle()
                        if limit is not None:
                            if wa is not None and wa < limit:
                                limit = wa
                            if wb is not None and wb < limit:
                                limit = wb
                            if cycle_bound < limit:
                                limit = cycle_bound
                            h = limit - floor
                            cap = max_steps - steps - 1
                            if cap < h:
                                h = cap
                            if not busy:
                                # busy can't change inside a no-op run,
                                # so a skipped probe top would take the
                                # idle branch (a jump that does NOT
                                # advance engine counters) — land on it
                                # instead of skipping over it.
                                cap = 8 - steps % 8
                                if cap < h:
                                    h = cap
                            if h > 0:
                                # A skipped probe iteration would have
                                # reset idle_chunk (busy can't change
                                # inside a no-op run).
                                if (steps + h - 1) // 8 > steps // 8:
                                    idle_chunk = 256
                                self.cycle += h
                                engine_a.advance_cycles(h)
                                engine_b.advance_cycles(h)
                                steps += h
                                backoff = 0
                                # The landing step has work by
                                # construction; don't re-probe it.
                                defer = 1
                                continue
                # Failed attempt: work is imminent, thin out probes.
                backoff = backoff * 2 if backoff else 1
                if backoff > 8:
                    backoff = 8
                defer = backoff
            # Inlined self.step(): one 250 MHz cycle for both engines.
            cycle = self.cycle + 1
            self.cycle = cycle
            engine_a.cycle = cycle - 1
            engine_b.cycle = cycle - 1
            tick_a()
            tick_b()
            steps += 1

    # ------------------------------------------------------- conveniences
    def establish(
        self, server_port: int = 80, max_time_s: float = 0.1
    ) -> "tuple[int, int]":
        """Open one connection B->listen, A->connect; returns (a_flow, b_flow)."""
        self.engine_b.listen(server_port)
        a_flow = self.engine_a.connect(self.engine_b.ip, server_port)
        accepted: list = []

        def done() -> bool:
            if not accepted:
                flow = self.engine_b.accept(server_port)
                if flow is not None:
                    accepted.append(flow)
            from ..tcp.state_machine import TcpState

            return bool(accepted) and self.engine_a.flow_state(a_flow) is TcpState.ESTABLISHED

        if not self.run(until=done, max_time_s=max_time_s):
            raise TimeoutError("three-way handshake did not complete")
        return a_flow, accepted[0]
