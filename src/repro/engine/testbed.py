"""Two-engine testbed: the paper's back-to-back FtEngine setup (§5).

Runs two :class:`FtEngine` instances connected by a :class:`Wire` under
one 250 MHz clock, with idle-skip to the next wire arrival or timer
deadline so long quiet stretches (RTO waits) cost nothing to simulate.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..net.link import LINK_100G, Link
from ..net.wire import Wire
from ..tcp.segment import ip_from_string
from .ftengine import ENGINE_PERIOD_PS, FtEngine, FtEngineConfig


class Testbed:
    """Two directly connected engines plus a run loop."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        config_a: Optional[FtEngineConfig] = None,
        config_b: Optional[FtEngineConfig] = None,
        wire: Optional[Wire] = None,
        link: Link = LINK_100G,
    ) -> None:
        self.wire = wire if wire is not None else Wire(link=link)
        self.engine_a = FtEngine(
            ip=ip_from_string("10.0.0.1"),
            config=config_a or FtEngineConfig(),
            port=self.wire.port_a,
        )
        self.engine_b = FtEngine(
            ip=ip_from_string("10.0.0.2"),
            config=config_b or FtEngineConfig(),
            port=self.wire.port_b,
        )
        self.cycle = 0

    @property
    def time_ps(self) -> int:
        """Exact integer picoseconds (cycle × 4000; see simlint F4T007)."""
        return self.cycle * ENGINE_PERIOD_PS

    @property
    def now_s(self) -> float:
        return self.time_ps / 1e12

    def step(self) -> None:
        """One 250 MHz cycle for both engines."""
        self.cycle += 1
        # Engines keep their own cycle counters aligned with the testbed.
        self.engine_a.cycle = self.cycle - 1
        self.engine_b.cycle = self.cycle - 1
        self.engine_a.tick()
        self.engine_b.tick()

    def _next_wakeup_ps(self) -> Optional[float]:
        candidates = []
        arrival = self.wire.next_arrival_ps()
        if arrival is not None:
            candidates.append(arrival)
        for engine in (self.engine_a, self.engine_b):
            wakeup = engine.next_wakeup_ps()
            if wakeup is not None:
                candidates.append(wakeup)
        future = [t for t in candidates if t > self.time_ps]
        return min(future) if future else None

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_time_s: float = 1.0,
        max_steps: int = 50_000_000,
        wakeup_ps: Optional[Callable[[], Optional[float]]] = None,
    ) -> bool:
        """Run until ``until()`` holds; returns False on time/step bound.

        With no predicate, runs until everything is idle (all queues
        empty, nothing in flight, no timers pending).  ``wakeup_ps``
        lets a driver announce externally scheduled work (e.g. the next
        open-loop traffic arrival) so idle-skip jumps exactly there
        instead of fast-forwarding in blind chunks past it.
        """
        max_time_ps = max_time_s * 1e12
        steps = 0
        idle_chunk = 256
        # Hot loop: hoist attribute lookups — this loop runs once per
        # simulated cycle under every traffic scenario and lab sweep.
        engine_a = self.engine_a
        engine_b = self.engine_b
        wire = self.wire
        tick_a = engine_a.tick
        tick_b = engine_b.tick
        while True:
            if until is not None and until():
                return True
            if self.cycle * ENGINE_PERIOD_PS >= max_time_ps or steps >= max_steps:
                return False
            # The busy probe costs more than an idle step, so only look
            # for idle-skip opportunities every few steps.
            if steps % 8 == 0:
                busy = (
                    engine_a.busy()
                    or engine_b.busy()
                    or wire.in_flight > 0
                )
                if not busy:
                    wakeup = self._next_wakeup_ps()
                    if wakeup_ps is not None:
                        external = wakeup_ps()
                        if external is not None and external > self.time_ps:
                            wakeup = (
                                external
                                if wakeup is None
                                else min(wakeup, external)
                            )
                    if wakeup is None:
                        if until is None:
                            return True  # fully idle and nothing awaited
                        # Idle but a predicate is waiting: fast-forward in
                        # growing chunks so cycle-gated drivers (send
                        # pumps) still run, yet long dead time is cheap.
                        self.cycle += idle_chunk
                        idle_chunk = min(idle_chunk * 2, 1 << 22)
                    else:
                        # Jump both engines to the cycle holding the
                        # wakeup (never past the caller's time bound).
                        target = min(wakeup, max_time_ps)
                        self.cycle = max(
                            self.cycle, math.ceil(target / ENGINE_PERIOD_PS)
                        )
                else:
                    idle_chunk = 256
            # Inlined self.step(): one 250 MHz cycle for both engines.
            cycle = self.cycle + 1
            self.cycle = cycle
            engine_a.cycle = cycle - 1
            engine_b.cycle = cycle - 1
            tick_a()
            tick_b()
            steps += 1

    # ------------------------------------------------------- conveniences
    def establish(
        self, server_port: int = 80, max_time_s: float = 0.1
    ) -> "tuple[int, int]":
        """Open one connection B->listen, A->connect; returns (a_flow, b_flow)."""
        self.engine_b.listen(server_port)
        a_flow = self.engine_a.connect(self.engine_b.ip, server_port)
        accepted: list = []

        def done() -> bool:
            if not accepted:
                flow = self.engine_b.accept(server_port)
                if flow is not None:
                    accepted.append(flow)
            from ..tcp.state_machine import TcpState

            return bool(accepted) and self.engine_a.flow_state(a_flow) is TcpState.ESTABLISHED

        if not self.run(until=done, max_time_s=max_time_s):
            raise TimeoutError("three-way handshake did not complete")
        return a_flow, accepted[0]
