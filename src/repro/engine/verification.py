"""Runtime invariant monitors: hardware-style assertions for FtEngine.

RTL designs carry assertion properties (SVA) that fire the moment an
invariant breaks, long before the failure surfaces at an interface.
This module is the simulation analog: an :class:`InvariantMonitor`
checks DESIGN.md §5's invariants on a live engine every N cycles and
collects violations with enough context to debug them.

Used by the integration tests to turn "the transfer completed" into
"the transfer completed *and* no TCB ever regressed, no location-LUT
entry dangled, and no CAM slot leaked at any point along the way".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..tcp.seq import seq_ge, seq_le
from ..tcp.state_machine import TcpState
from .ftengine import FtEngine
from .scheduler import Location


@dataclass
class Violation:
    time_s: float
    invariant: str
    flow_id: int
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.time_s * 1e6:.2f}us flow={self.flow_id}: "
            f"{self.invariant}: {self.detail}"
        )


@dataclass
class _FlowShadow:
    """Last observed monotone pointers, for regression detection."""

    snd_una: int
    snd_nxt: int
    req: int
    rcv_nxt: int


class InvariantMonitor:
    """Periodically audits an engine's architectural state."""

    def __init__(self, engine: FtEngine) -> None:
        self.engine = engine
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._shadows: Dict[int, _FlowShadow] = {}

    # ------------------------------------------------------------- helpers
    def _flag(self, invariant: str, flow_id: int, detail: str) -> None:
        self.violations.append(
            Violation(self.engine.now_s, invariant, flow_id, detail)
        )

    # ---------------------------------------------------------------- audit
    def check(self) -> List[Violation]:
        """Run every invariant once; returns violations found this pass."""
        before = len(self.violations)
        self.checks_run += 1
        self._check_tcb_pointer_order()
        self._check_pointer_monotonicity()
        self._check_location_lut_consistency()
        self._check_cam_slot_accounting()
        self._check_window_sanity()
        return self.violations[before:]

    def _iter_tcbs(self):
        for flow_id in list(self.engine.flows):
            tcb = self.engine.tcb_of(flow_id)
            if tcb is not None:
                yield flow_id, tcb

    def _check_tcb_pointer_order(self) -> None:
        """snd_una <= snd_nxt and snd_nxt <= req+1 (FIN) at all times."""
        for flow_id, tcb in self._iter_tcbs():
            if tcb.state in (TcpState.CLOSED, TcpState.LISTEN):
                continue
            if not seq_le(tcb.snd_una, tcb.snd_nxt):
                self._flag(
                    "pointer-order", flow_id,
                    f"snd_una={tcb.snd_una} passed snd_nxt={tcb.snd_nxt}",
                )
            if tcb.state is TcpState.ESTABLISHED and tcb.bytes_in_flight > 0:
                flight = tcb.bytes_in_flight
                limit = max(tcb.cwnd, tcb.mss) + tcb.snd_wnd + tcb.mss
                if flight > tcb.send_buf + 2:
                    self._flag(
                        "flight-bound", flow_id,
                        f"{flight} B in flight exceeds the send buffer",
                    )

    def _check_pointer_monotonicity(self) -> None:
        """Cumulative pointers never regress between audits (§4.2.1)."""
        for flow_id, tcb in self._iter_tcbs():
            shadow = self._shadows.get(flow_id)
            if shadow is not None:
                for name in ("snd_una", "snd_nxt", "req", "rcv_nxt"):
                    if name == "snd_nxt":
                        # Go-back-N rollback is the one legal regression.
                        continue
                    old = getattr(shadow, name)
                    new = getattr(tcb, name)
                    if not seq_ge(new, old):
                        self._flag(
                            "monotonicity", flow_id,
                            f"{name} regressed {old} -> {new}",
                        )
            self._shadows[flow_id] = _FlowShadow(
                tcb.snd_una, tcb.snd_nxt, tcb.req, tcb.rcv_nxt
            )
        for flow_id in list(self._shadows):
            if flow_id not in self.engine.flows:
                del self._shadows[flow_id]

    def _check_location_lut_consistency(self) -> None:
        """Every live flow is findable where the LUT says it is (§4.3.1)."""
        scheduler = self.engine.scheduler
        for flow_id in list(self.engine.flows):
            location = scheduler.location_of(flow_id)
            if location is None:
                self._flag(
                    "location-lut", flow_id, "live flow missing from the LUT"
                )
                continue
            if location is Location.MOVING:
                continue  # transient by design; bounded by 12 cycles
            if location is Location.FPC:
                resident = any(
                    fpc.peek_tcb(flow_id) is not None
                    for fpc in self.engine.fpcs
                )
                if not resident:
                    self._flag(
                        "location-lut", flow_id, "LUT says FPC but no FPC has it"
                    )
            elif location is Location.DRAM:
                if flow_id not in self.engine.memory_manager:
                    self._flag(
                        "location-lut", flow_id,
                        "LUT says DRAM but the memory manager lacks it",
                    )

    def _check_cam_slot_accounting(self) -> None:
        """CAM entries match TCB-table residents; no leaked slots."""
        for fpc in self.engine.fpcs:
            for flow_id in fpc.resident_flows():
                if fpc.peek_tcb(flow_id) is None:
                    self._flag(
                        "cam-accounting", flow_id,
                        f"{fpc.name}: CAM entry without a TCB",
                    )

    def _check_window_sanity(self) -> None:
        """Receive windows stay within the configured buffer."""
        for flow_id, tcb in self._iter_tcbs():
            if tcb.rcv_wnd > tcb.rcv_buf:
                self._flag(
                    "window-sanity", flow_id,
                    f"rcv_wnd={tcb.rcv_wnd} exceeds rcv_buf={tcb.rcv_buf}",
                )

    # ----------------------------------------------------------- lifecycle
    def assert_clean(self) -> None:
        """Raise if any violation was ever recorded."""
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:20])
            raise AssertionError(
                f"{len(self.violations)} invariant violations:\n{summary}"
            )


def audited_run(
    testbed,
    until,
    max_time_s: float,
    every_cycles: int = 2048,
    monitors: Optional[List[InvariantMonitor]] = None,
) -> bool:
    """Like ``Testbed.run`` but auditing both engines along the way."""
    if monitors is None:
        monitors = [
            InvariantMonitor(testbed.engine_a),
            InvariantMonitor(testbed.engine_b),
        ]
    state = {"next_audit": 0}

    def audited_until() -> bool:
        if testbed.cycle >= state["next_audit"]:
            for monitor in monitors:
                monitor.check()
            state["next_audit"] = testbed.cycle + every_cycles
        return until()

    finished = testbed.run(until=audited_until, max_time_s=max_time_s)
    for monitor in monitors:
        monitor.assert_clean()
    return finished
