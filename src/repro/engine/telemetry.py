"""Engine telemetry: structured tracing of FtEngine internals.

Attaches non-invasively (wrapper functions, like a logic analyzer on the
design's internal buses) and records what the control path actually did:
events submitted, FPU passes with their emitted directives, packets
entering the RX parser, and per-flow state transitions.  Invaluable when
a protocol test fails and you need to see *why* the engine (didn't)
transmit.

Typical use::

    tracer = EngineTracer.attach(testbed.engine_a, flows={flow_id})
    ... run traffic ...
    print(tracer.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from ..tcp.state_machine import TcpState
from .ftengine import FtEngine

DEFAULT_MAX_RECORDS = 100_000


@dataclass
class TraceRecord:
    """One observed engine action."""

    time_s: float
    kind: str  # 'event' | 'fpu' | 'tx' | 'rx' | 'state' | 'note'
    flow_id: int
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.time_s * 1e6:10.2f}us  flow={self.flow_id:<4d} "
            f"{self.kind:5s} {self.detail}"
        )


class EngineTracer:
    """Recorder for one engine's control-path activity."""

    def __init__(
        self,
        engine: FtEngine,
        flows: Optional[Set[int]] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        self.engine = engine
        self.flows = flows
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._detach_fns: List[Callable[[], None]] = []
        self._last_state: dict = {}

    # ------------------------------------------------------------- filters
    def _wants(self, flow_id: int) -> bool:
        return self.flows is None or flow_id in self.flows

    def _record(self, kind: str, flow_id: int, detail: str) -> None:
        if not self._wants(flow_id):
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(
            TraceRecord(self.engine.now_s, kind, flow_id, detail)
        )

    # -------------------------------------------------------------- attach
    @classmethod
    def attach(
        cls,
        engine: FtEngine,
        flows: Optional[Set[int]] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> "EngineTracer":
        tracer = cls(engine, flows, max_records)
        tracer._wrap_submit()
        tracer._wrap_apply_result()
        tracer._wrap_transmit()
        tracer._wrap_parse()
        return tracer

    def detach(self) -> None:
        for restore in self._detach_fns:
            restore()
        self._detach_fns.clear()

    def _wrap_submit(self) -> None:
        original = self.engine._submit

        def wrapped(event):
            parts = []
            if event.req is not None:
                parts.append(f"req={event.req}")
            if event.ack is not None:
                parts.append(f"ack={event.ack}")
            if event.rcv_nxt is not None:
                parts.append(f"rcv_nxt={event.rcv_nxt}")
            if event.dup_incr:
                parts.append("dupack")
            for flag in ("syn", "fin", "rst", "timeout", "connect", "close"):
                if getattr(event, flag):
                    parts.append(flag)
            self._record(
                "event", event.flow_id,
                f"{event.kind.value} {' '.join(parts)}".strip(),
            )
            return original(event)

        self.engine._submit = wrapped
        self._detach_fns.append(lambda: setattr(self.engine, "_submit", original))

    def _wrap_apply_result(self) -> None:
        original = self.engine._apply_result

        def wrapped(result):
            tcb = result.tcb
            directives = ", ".join(
                f"seq={d.seq}+{d.length}{' RTX' if d.retransmission else ''}"
                for d in result.directives
            )
            self._record(
                "fpu", tcb.flow_id,
                f"una={tcb.snd_una} nxt={tcb.snd_nxt} cwnd={tcb.cwnd}"
                + (f" -> [{directives}]" if directives else ""),
            )
            previous = self._last_state.get(tcb.flow_id)
            if previous is not tcb.state:
                self._last_state[tcb.flow_id] = tcb.state
                if previous is not None:
                    self._record(
                        "state", tcb.flow_id,
                        f"{previous.value} -> {tcb.state.value}",
                    )
            return original(result)

        self.engine._apply_result = wrapped
        self._detach_fns.append(
            lambda: setattr(self.engine, "_apply_result", original)
        )

    def _wrap_transmit(self) -> None:
        original = self.engine._transmit_segment

        def wrapped(segment):
            flow_id = self.engine.rx_parser.lookup(segment.flow_key)
            self._record(
                "tx", flow_id if flow_id is not None else -1,
                f"{segment.flag_names()} seq={segment.seq} ack={segment.ack} "
                f"len={len(segment.payload)}",
            )
            return original(segment)

        self.engine._transmit_segment = wrapped
        self._detach_fns.append(
            lambda: setattr(self.engine, "_transmit_segment", original)
        )

    def _wrap_parse(self) -> None:
        parser = self.engine.rx_parser
        original = parser.parse

        def wrapped(segment):
            event = original(segment)
            if event is not None:
                self._record(
                    "rx", event.flow_id,
                    f"{segment.flag_names()} seq={segment.seq} "
                    f"ack={segment.ack} len={len(segment.payload)}",
                )
            return event

        parser.parse = wrapped
        self._detach_fns.append(lambda: setattr(parser, "parse", original))

    # -------------------------------------------------------------- output
    def render(self, kinds: Optional[Set[str]] = None) -> str:
        """The trace as a timeline, optionally filtered by record kind."""
        selected = [
            record
            for record in self.records
            if kinds is None or record.kind in kinds
        ]
        lines = [str(record) for record in selected]
        if self.dropped:
            lines.append(f"... {self.dropped} records dropped (buffer full)")
        return "\n".join(lines)

    def count(self, kind: str) -> int:
        return sum(1 for record in self.records if record.kind == kind)

    def state_transitions(self, flow_id: int) -> List[str]:
        return [
            record.detail
            for record in self.records
            if record.kind == "state" and record.flow_id == flow_id
        ]
