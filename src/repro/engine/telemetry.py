"""Engine telemetry: structured tracing of FtEngine internals.

:class:`EngineTracer` is the engine-focused debugging view over the
full-stack trace bus (:mod:`repro.obs`).  Attaching points the engine's
built-in emit sites at a private :class:`~repro.obs.trace.TraceBus`
restricted to the classic record kinds — events submitted, FPU passes
with their emitted directives, packets entering the RX parser, segments
leaving the TX path, and per-flow state transitions — and renders them
as the familiar flat timeline.  Invaluable when a protocol test fails
and you need to see *why* the engine (didn't) transmit.

Typical use::

    tracer = EngineTracer.attach(testbed.engine_a, flows={flow_id})
    ... run traffic ...
    print(tracer.render())

For cross-layer tracing (memory manager, host queues, traffic engine)
or Perfetto export, use :class:`repro.obs.TraceBus` directly with
:func:`repro.obs.attach_engine` / :func:`repro.obs.attach_load_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..obs.hooks import attach_engine
from ..obs.trace import TraceBus
from .ftengine import FtEngine

DEFAULT_MAX_RECORDS = 100_000

#: The record kinds this tracer keeps (and the bus cap counts).
_RECORD_KINDS = frozenset({"event", "fpu", "tx", "rx", "state"})

#: The engine emits these kinds on four layers; host messages and
#: scheduler-internal kinds stay out of the classic view.
_RECORD_LAYERS = frozenset({"engine.fpc", "engine.sched", "engine.tx", "engine.rx"})


@dataclass
class TraceRecord:
    """One observed engine action."""

    time_s: float
    kind: str  # 'event' | 'fpu' | 'tx' | 'rx' | 'state' | 'note'
    flow_id: int
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.time_s * 1e6:10.2f}us  flow={self.flow_id:<4d} "
            f"{self.kind:5s} {self.detail}"
        )


class EngineTracer:
    """Recorder for one engine's control-path activity."""

    def __init__(
        self,
        engine: FtEngine,
        flows: Optional[Set[int]] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        self.engine = engine
        self.flows = flows
        self.max_records = max_records
        self.bus = TraceBus(
            layers=_RECORD_LAYERS,
            flows=flows,
            max_events=max_records,
            kinds=_RECORD_KINDS,
        )

    # -------------------------------------------------------------- attach
    @classmethod
    def attach(
        cls,
        engine: FtEngine,
        flows: Optional[Set[int]] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> "EngineTracer":
        tracer = cls(engine, flows, max_records)
        attach_engine(engine, tracer.bus)
        return tracer

    def detach(self) -> None:
        attach_engine(self.engine, None)

    # -------------------------------------------------------------- access
    @property
    def records(self) -> List[TraceRecord]:
        return [
            TraceRecord(
                event.t_ps / 1e12, event.kind, event.flow_id, str(event.detail)
            )
            for event in self.bus.events
        ]

    @property
    def dropped(self) -> int:
        return self.bus.dropped

    # -------------------------------------------------------------- output
    def render(self, kinds: Optional[Set[str]] = None) -> str:
        """The trace as a timeline, optionally filtered by record kind."""
        lines = [
            str(record)
            for record in self.records
            if kinds is None or record.kind in kinds
        ]
        if self.dropped:
            lines.append(f"... {self.dropped} records dropped (buffer full)")
        return "\n".join(lines)

    def count(self, kind: str) -> int:
        return self.bus.count(kind)

    def state_transitions(self, flow_id: int) -> List[str]:
        return [
            str(event.detail)
            for event in self.bus.events
            if event.kind == "state" and event.flow_id == flow_id
        ]
