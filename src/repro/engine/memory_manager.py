"""The memory manager: DRAM-resident TCBs, TCB cache and check logic.

To support 64K flows, TCBs that do not fit in the FPCs' SRAM live in
on-board DRAM (§4.3.1).  Events routed to DRAM are *handled* — written
into the flow's event entry exactly like the FPC's event handler would —
but never processed; when the check logic determines the flow could now
send a packet, it signals the scheduler to swap the TCB into an FPC.

A TCB cache in front of the DRAM absorbs accesses to hot flows; misses
pay the DRAM channel occupancy that throttles Fig 13's DRAM curve past
1024 flows.  The cache is a :class:`repro.mem.TcbCacheHierarchy`: the
default geometry (one direct-mapped level of ``cache_entries`` sets) is
the paper's scheme and reproduces the pre-hierarchy pinned trace
fingerprints bit for bit; non-default geometries (multi-level,
set-associative, sketch-driven eviction) are the ``repro.mem``
million-flow upgrade path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..mem.hierarchy import CacheGeometry, TcbCacheHierarchy
from ..sim.component import Component
from ..sim.fifo import Fifo
from ..sim.memory import DRAMModel
from ..tcp.tcb import TCB_SIZE_BYTES, Tcb
from .event_handler import EventEntry, accumulate_event, copy_entry, merge_into_tcb
from .events import TcpEvent

DEFAULT_CACHE_ENTRIES = 512
DEFAULT_INPUT_DEPTH = 256


class MemoryManager(Component):
    """Handles events for DRAM-resident flows and feeds swap-in requests."""

    def __init__(
        self,
        dram: DRAMModel,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        time_ps_fn: Optional[Callable[[], int]] = None,
        geometry: Optional[Union[str, CacheGeometry]] = None,
        sketch=None,
        sketch_own_updates: bool = True,
    ) -> None:
        super().__init__("memory-manager")
        self.dram = dram
        self.cache_entries = cache_entries
        # Fall back to the component's own 250 MHz cycle clock when no
        # engine-level time source is wired in (standalone use).
        self.time_ps_fn = time_ps_fn or (lambda: self.cycle * 4000)

        if geometry is None:
            geometry = CacheGeometry.direct_mapped(cache_entries)
        elif isinstance(geometry, str):
            geometry = CacheGeometry.parse(geometry)
        #: The TCB cache model.  ``sketch_own_updates=False`` when a
        #: scheduler-side FlowHeat advisor already feeds the shared
        #: sketch (avoids double-counting each event).
        self.cache = TcbCacheHierarchy(
            geometry, sketch=sketch, own_updates=sketch_own_updates
        )

        #: Functional home of DRAM-resident state: flow -> (TCB, events).
        self._resident: Dict[int, Tuple[Tcb, EventEntry]] = {}

        self.input: Fifo[TcpEvent] = Fifo(DEFAULT_INPUT_DEPTH, "memmgr.in")
        #: Check-logic output: flows that can now send (§4.3.1).
        self.swap_in_requests: List[int] = []
        self._swap_in_pending: set = set()

        self.events_handled = 0
        self.cache_hits = 0
        self.cache_misses = 0

        #: Observability (repro.obs): a TraceBus, or None (free default).
        self.trace = None
        self.trace_name = self.name
        #: Race sanitizer (repro.check): shadow-state checker, or None.
        self.san = None

    # ------------------------------------------------------------- stores
    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._resident

    @property
    def flow_count(self) -> int:
        return len(self._resident)

    def store(self, tcb: Tcb, entry: Optional[EventEntry] = None) -> None:
        """Accept an evicted TCB from an FPC (swap-out completes here)."""
        if self.trace is not None:
            self.trace.emit(
                self.time_ps_fn(), "engine.mem", self.trace_name,
                "store", tcb.flow_id, tcb.state.value,
            )
        self._resident[tcb.flow_id] = (tcb, entry if entry is not None else EventEntry())
        if self.san is not None:
            self.san.on_dram_store(self.cycle, tcb.flow_id)
        self._touch_cache(tcb.flow_id, write=True)
        self._swap_in_pending.discard(tcb.flow_id)

    def take(self, flow_id: int) -> Tuple[Tcb, EventEntry]:
        """Remove and return a flow's state for swap-in to an FPC."""
        if flow_id not in self._resident:
            raise KeyError(f"flow {flow_id} is not DRAM-resident")
        if self.trace is not None:
            self.trace.emit(
                self.time_ps_fn(), "engine.mem", self.trace_name,
                "take", flow_id,
            )
        self._charge_dram(read=True, flow_id=flow_id, evicting=True)
        if self.san is not None:
            self.san.on_dram_take(self.cycle, flow_id)
        self._swap_in_pending.discard(flow_id)
        return self._resident.pop(flow_id)

    def peek_tcb(self, flow_id: int) -> Optional[Tcb]:
        pair = self._resident.get(flow_id)
        return None if pair is None else pair[0]

    # -------------------------------------------------------------- cache
    def _touch_cache(self, flow_id: int, write: bool = False) -> bool:
        """Access the TCB through the cache; returns True on a hit.

        A miss charges the DRAM channel for a TCB read (plus the dirty
        write-back of each line the fill cascade pushed out); a hit is
        free — that is the whole point of the cache (§4.3.1).  In the
        default direct-mapped geometry the emitted hit/miss/writeback
        sequence and DRAM charge order are identical to the original
        hardcoded cache (the pinned fingerprints are the oracle).
        """
        outcome = self.cache.access(flow_id)
        if outcome.hit:
            self.cache_hits += 1
            if self.trace is not None:
                self.trace.emit(
                    self.time_ps_fn(), "engine.mem", self.trace_name,
                    "hit", flow_id,
                )
            if outcome.promoted_from is not None and self.trace is not None:
                self.trace.emit(
                    self.time_ps_fn(), "engine.mem", self.trace_name,
                    "promote", flow_id, f"l{outcome.promoted_from}",
                )
        else:
            self.cache_misses += 1
            now_ps = self.time_ps_fn()
            if self.trace is not None:
                self.trace.emit(
                    now_ps, "engine.mem", self.trace_name, "miss", flow_id,
                    "clean" if not outcome.writebacks
                    else f"writeback={outcome.writebacks[0]}",
                )
        self._apply_outcome(flow_id, outcome)
        return outcome.hit

    def _apply_outcome(self, flow_id: int, outcome) -> None:
        """Charge DRAM and drive trace/sanitizer from one cache access."""
        now_ps = self.time_ps_fn()
        for victim in outcome.writebacks:
            self.dram.transfer(TCB_SIZE_BYTES, now_ps)  # dirty write-back
            if self.san is not None:
                self.san.on_cache_evict(self.cycle, victim, writeback=True)
        if not outcome.hit:
            self.dram.transfer(TCB_SIZE_BYTES, now_ps)  # line fill
        for level, filled in outcome.fills:
            if level > 0 and filled != flow_id and self.trace is not None:
                self.trace.emit(
                    now_ps, "engine.mem", self.trace_name,
                    "demote", filled, f"l{level}",
                )
            if self.san is not None:
                self.san.on_cache_fill(self.cycle, filled, level)

    def _charge_dram(self, read: bool, flow_id: int, evicting: bool = False) -> None:
        now_ps = self.time_ps_fn()
        if self.cache.contains(flow_id):
            if evicting:
                self.cache.invalidate(flow_id)
                if self.san is not None:
                    self.san.on_cache_invalidate(flow_id)
            return
        self.dram.transfer(TCB_SIZE_BYTES, now_ps)

    # -------------------------------------------------------------- input
    def offer_event(self, event: TcpEvent) -> bool:
        return self.input.push(event)

    @property
    def backpressure(self) -> bool:
        return len(self.input) > self.input.capacity // 2

    def busy(self) -> bool:
        # Hot path: direct deque truthiness avoids Fifo.__len__.
        return bool(self.input._items or self.swap_in_requests)

    def tick(self) -> None:
        self.cycle += 1
        # The DRAM channel gates throughput: while it is busy we stall,
        # which is exactly the Fig 13 bottleneck.
        if self.dram.busy_until_ps > self.time_ps_fn():
            return
        event = self.input.try_pop()
        if event is None:
            return
        self.handle_event(event)

    def handle_event(self, event: TcpEvent) -> None:
        """Handle (accumulate) one event against the DRAM-resident TCB."""
        pair = self._resident.get(event.flow_id)
        if pair is None:
            return  # flow migrated away after routing; scheduler retries
        tcb, entry = pair
        self._touch_cache(event.flow_id)
        accumulate_event(entry, event)
        self.events_handled += 1
        if self.san is not None:
            self.san.on_dram_write(self.cycle, event.flow_id, entry.valid)
        # Check logic: would this flow emit a packet if processed?  It
        # merges a *copy* — it must not process or write back (§4.3.1).
        probe = tcb.clone()
        merge_into_tcb(probe, copy_entry(entry))
        needs_processing = (
            probe.can_send_now()
            or probe.cc.get("_connect_req")
            or probe.cc.get("_latest_ack") is not None
            # Connection control must also be processed in an FPC:
            # SYN/SYN-ACK replies, FIN progress, RST teardown.
            or probe.syn_received
            or probe.fin_received
            or probe.rst_received
        )
        if self.trace is not None:
            self.trace.emit(
                self.time_ps_fn(), "engine.mem", self.trace_name,
                "handle", event.flow_id, event.kind.value,
            )
        if needs_processing and event.flow_id not in self._swap_in_pending:
            self._swap_in_pending.add(event.flow_id)
            self.swap_in_requests.append(event.flow_id)
            if self.trace is not None:
                self.trace.emit(
                    self.time_ps_fn(), "engine.mem", self.trace_name,
                    "swapreq", event.flow_id,
                )

    def drain_swap_in_requests(self) -> List[int]:
        requests, self.swap_in_requests = self.swap_in_requests, []
        return requests
