"""TCP data buffers: the hugepage-backed byte stores the engine DMAs.

The F4T runtime allocates TCP data buffers in hugepages (§4.1.1); the
library writes send data there and the packet generator fetches it by
sequence pointer, appending it to headers without any processing
(§4.1.2 ❷).  :class:`SendStream` models one flow's send buffer addressed
by absolute sequence numbers, retaining bytes until they are ACKed (they
may be needed for retransmission).
"""

from __future__ import annotations

from ..tcp.seq import seq_add, seq_sub


class SendStream:
    """A flow's outgoing byte stream addressed in sequence space."""

    def __init__(self, base_seq: int, capacity: int) -> None:
        #: Sequence number of ``self._data[0]``.
        self.base_seq = base_seq
        self.capacity = capacity
        self._data = bytearray()
        self.bytes_appended = 0
        self.bytes_released = 0

    @property
    def end_seq(self) -> int:
        """One past the last buffered byte — the app's ``req`` pointer."""
        return seq_add(self.base_seq, len(self._data))

    @property
    def buffered(self) -> int:
        return len(self._data)

    @property
    def room(self) -> int:
        return self.capacity - len(self._data)

    def append(self, data: bytes) -> int:
        """Store outgoing bytes; returns the new request pointer.

        The library blocks (or returns EAGAIN) before overflowing, so
        appending beyond capacity is a caller bug.
        """
        if len(data) > self.room:
            raise BufferError(
                f"send buffer overflow: {len(data)} B offered, {self.room} B free"
            )
        self._data += data
        self.bytes_appended += len(data)
        return self.end_seq

    def fetch(self, seq: int, length: int) -> bytes:
        """DMA read for the packet generator: bytes [seq, seq+length)."""
        offset = seq_sub(seq, self.base_seq)
        if offset < 0 or offset + length > len(self._data):
            raise IndexError(
                f"fetch [{seq}, +{length}) outside buffered "
                f"[{self.base_seq}, {self.end_seq})"
            )
        return bytes(self._data[offset : offset + length])

    def release(self, upto_seq: int) -> int:
        """Free acknowledged bytes below ``upto_seq``; returns count freed."""
        advance = seq_sub(upto_seq, self.base_seq)
        if advance <= 0:
            return 0
        advance = min(advance, len(self._data))
        del self._data[:advance]
        self.base_seq = seq_add(self.base_seq, advance)
        self.bytes_released += advance
        return advance

    def rebase(self, new_base_seq: int) -> None:
        """Reset an empty stream's origin (used at connection setup)."""
        if self._data:
            raise BufferError("cannot rebase a non-empty send stream")
        self.base_seq = new_base_seq
