"""The scheduler: event routing, coalescing, and TCB migration (§4.3, §4.4).

The scheduler orchestrates all flows:

* it tracks every TCB's up-to-date location in the **location LUT**
  (implemented with partitioned logic LUTs so several events route per
  cycle, §4.4.2);
* it **coalesces** events of the same flow in four 16-entry FIFOs before
  routing, reducing the event count reaching FPCs (§4.4.1);
* it holds events whose TCB is migrating in the **pending queue** and
  retries after 12 cycles — by which time any migration has completed,
  so the queue can never grow without bound (§4.3.2);
* it **allocates** new flows to the FPC with the lowest flow count and
  **migrates** flows away from congested FPCs (§4.4.2);
* it drives the FPC↔DRAM **migration protocol**: evict request → evict
  flag → evict checker diverts the processed TCB → DRAM store →
  location-LUT update (Fig 6).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..mem.advisor import POLICY_PREDICTIVE, resolve_policy
from ..sim.component import Component
from ..sim.fifo import Fifo
from ..sim.memory import PartitionedLUT
from ..tcp.tcb import Tcb
from .events import TcpEvent
from .fpc import FlowProcessingCore
from .memory_manager import MemoryManager

#: Retry interval for events whose TCB is migrating (§4.3.2).
PENDING_RETRY_CYCLES = 12
COALESCE_FIFOS = 4
COALESCE_DEPTH = 16

#: One 250 MHz cycle in exact integer picoseconds, for trace timestamps.
#: (Duplicated from ftengine, which imports this module; the engine keeps
#: our cycle aligned to its.)
_CYCLE_PS = 4000


class Location(enum.Enum):
    FPC = "fpc"
    DRAM = "dram"
    MOVING = "moving"


@dataclass
class _Migration:
    """An in-flight eviction out of an FPC."""

    flow_id: int
    source_fpc: int
    #: 'capacity': make room in SRAM (destination DRAM); 'congestion':
    #: rebalance to the idlest FPC (§4.4.2).
    kind: str = "capacity"
    #: When set, swap this DRAM flow into the freed slot afterwards.
    then_swap_in: Optional[int] = None


class Scheduler(Component):
    """Routes events and migrates TCBs among FPCs and DRAM."""

    def __init__(
        self,
        fpcs: List[FlowProcessingCore],
        memory_manager: MemoryManager,
        coalescing: bool = True,
        lut_groups: int = COALESCE_FIFOS,
        flow_heat=None,
        placement_policy: Optional[str] = None,
    ) -> None:
        super().__init__("scheduler")
        self.fpcs = fpcs
        self.memory_manager = memory_manager
        self.coalescing = coalescing
        #: repro.mem FlowHeat advisor, or None (the paper's reactive
        #: placement; the default keeps the hot path advisor-free).
        self.flow_heat = flow_heat
        self.placement_policy = resolve_policy(placement_policy)
        self.lut = PartitionedLUT(lut_groups)
        self.coalesce_fifos: List[Fifo[TcpEvent]] = [
            Fifo(COALESCE_DEPTH, f"coalesce{i}") for i in range(COALESCE_FIFOS)
        ]
        #: Events whose destination is migrating: (retry_cycle, event).
        self.pending: Deque[Tuple[int, TcpEvent]] = deque()
        self._migrations: Dict[int, _Migration] = {}
        #: Swap-ins waiting for room in their target FPC.
        self._deferred_swap_ins: Deque[int] = deque()

        self.events_submitted = 0
        self.events_coalesced = 0
        self.events_routed = 0
        self.congestion_migrations = 0
        self.migrations_declined_hot = 0
        self.evictions = 0
        self.swap_ins = 0
        self.pending_retries = 0
        self.max_pending = 0

        #: Observability (repro.obs): a TraceBus, or None (free default).
        self.trace = None
        self.trace_name = self.name
        #: Race sanitizer (repro.check): shadow-state checker, or None.
        self.san = None

    # ------------------------------------------------------- registration
    def register_new_flow(self, tcb: Tcb) -> Location:
        """Place a new flow: emptiest FPC first, DRAM as overflow (§4.4.2)."""
        target = self._fpc_with_lowest_count(require_room=True)
        if target is not None:
            target.accept_tcb(tcb)
            self.lut.set(tcb.flow_id, (Location.FPC, target.fpc_id))
            return Location.FPC
        self.memory_manager.store(tcb)
        self.lut.set(tcb.flow_id, (Location.DRAM, -1))
        return Location.DRAM

    def deregister_flow(self, flow_id: int) -> None:
        """Remove a closed flow wherever it lives."""
        where = self.lut.get(flow_id)
        if where is None:
            return
        location, fpc_id = where
        if location is Location.FPC:
            fpc = self.fpcs[fpc_id]
            slot = fpc.cam.try_lookup(flow_id)
            if slot is not None:
                fpc.cam.remove(flow_id)
                fpc.tcb_table.clear(slot)
                fpc.event_table.clear(slot)
                if self.san is not None:
                    self.san.on_slot_clear(fpc_id, slot)
        elif location is Location.DRAM and flow_id in self.memory_manager:
            self.memory_manager.take(flow_id)
        if self.san is not None:
            self.san.on_flow_closed(flow_id)
        self.lut.delete(flow_id)

    def location_of(self, flow_id: int) -> Optional[Location]:
        where = self.lut.get(flow_id)
        return None if where is None else where[0]

    def _fpc_with_lowest_count(
        self, require_room: bool = False
    ) -> Optional[FlowProcessingCore]:
        candidates = [f for f in self.fpcs if not require_room or f.has_room]
        if not candidates:
            return None
        if self.placement_policy == POLICY_PREDICTIVE and self.flow_heat is not None:
            # Predictive placement ranks FPCs by predicted event mass,
            # not resident-flow count: an FPC hosting one heavy hitter
            # is *fuller* than one hosting three mice, so migrations
            # and swap-ins land on genuinely idle cores instead of
            # ping-ponging through the hot one.
            heat = self.flow_heat
            return min(
                candidates,
                key=lambda f: (
                    sum(heat.estimate(fid) for fid in f.cam.keys()),
                    f.flow_count,
                ),
            )
        return min(candidates, key=lambda f: f.flow_count)

    # ------------------------------------------------------------- submit
    def submit(self, event: TcpEvent) -> bool:
        """Accept an event into the coalesce stage; False = backpressure."""
        fifo = self.coalesce_fifos[event.flow_id % COALESCE_FIFOS]
        self.events_submitted += 1
        if self.flow_heat is not None:
            self.flow_heat.record(event.flow_id)
        if self.coalescing:
            # Coalesce with an event of the same flow already queued,
            # but only when no information would be lost (§4.4.1).
            for queued in fifo:
                if queued.flow_id == event.flow_id and queued.information_preserving_merge(event):
                    self.events_coalesced += 1
                    if self.trace is not None:
                        self.trace.emit(
                            self.cycle * _CYCLE_PS, "engine.sched",
                            self.trace_name, "coalesce", event.flow_id,
                            event.kind.value,
                        )
                    return True
        if fifo.push(event):
            return True
        self.events_submitted -= 1
        return False

    @property
    def input_backlog(self) -> int:
        return sum(len(f) for f in self.coalesce_fifos) + len(self.pending)

    # -------------------------------------------------------------- clock
    def busy(self) -> bool:
        # Hot path: direct deque truthiness, no len()/sum() chains.
        if self.pending or self._migrations or self._deferred_swap_ins:
            return True
        if self.memory_manager.swap_in_requests:
            return True
        for fifo in self.coalesce_fifos:
            if fifo._items:
                return True
        return False

    def tick(self) -> None:
        self.cycle += 1
        self._retry_pending()
        # Route up to one event per LUT partition per cycle (§4.4.2).
        for fifo in self.coalesce_fifos:
            if fifo.empty:
                continue
            event = fifo.peek()
            if self._route(event):
                fifo.pop()
                self.events_routed += 1
        self._handle_swap_in_requests()
        self._collect_evicted()

    # ------------------------------------------------------------- routing
    def _route(self, event: TcpEvent) -> bool:
        where = self.lut.get(event.flow_id)
        if where is None:
            return True  # flow closed while queued; drop
        location, fpc_id = where
        if location is Location.MOVING:
            self.pending.append((self.cycle + PENDING_RETRY_CYCLES, event))
            self.max_pending = max(self.max_pending, len(self.pending))
            if self.trace is not None:
                self.trace.emit(
                    self.cycle * _CYCLE_PS, "engine.sched", self.trace_name,
                    "pend", event.flow_id, event.kind.value,
                )
            return True
        if location is Location.FPC:
            fpc = self.fpcs[fpc_id]
            if fpc.backpressure and len(self.fpcs) > 1:
                # Event load imbalance: migrate this flow to the idlest
                # FPC (§4.4.2, Table 2) and hold the event meanwhile —
                # but only when some FPC actually has headroom.  When
                # every FPC is saturated, migrating just thrashes.
                if (
                    self.placement_policy == POLICY_PREDICTIVE
                    and self.flow_heat is not None
                    and self.flow_heat.is_hot(event.flow_id)
                ):
                    # Predicted heavy hitter: moving it thrashes its CAM
                    # state and usually re-congests the target — keep it
                    # where it is and let the backlog drain.
                    self.migrations_declined_hot += 1
                    return fpc.offer_event(event)
                target = self._fpc_with_lowest_count(require_room=True)
                if (
                    target is not None
                    and target is not fpc
                    and not target.backpressure
                ):
                    self._migrate_between_fpcs(event.flow_id, fpc_id)
                    self.pending.append((self.cycle + PENDING_RETRY_CYCLES, event))
                    self.max_pending = max(self.max_pending, len(self.pending))
                    return True
            return fpc.offer_event(event)
        return self.memory_manager.offer_event(event)

    def _retry_pending(self) -> None:
        for _ in range(len(self.pending)):
            retry_cycle, event = self.pending[0]
            if retry_cycle > self.cycle:
                break
            self.pending.popleft()
            self.pending_retries += 1
            if self.trace is not None:
                self.trace.emit(
                    self.cycle * _CYCLE_PS, "engine.sched", self.trace_name,
                    "retry", event.flow_id, event.kind.value,
                )
            if not self._route(event):
                self.pending.append((self.cycle + PENDING_RETRY_CYCLES, event))

    # ----------------------------------------------------------- migration
    def _migrate_between_fpcs(self, flow_id: int, source_fpc: int) -> None:
        if flow_id in self._migrations:
            return
        if not self.fpcs[source_fpc].request_evict(flow_id):
            return
        self.lut.set(flow_id, (Location.MOVING, source_fpc))
        self._migrations[flow_id] = _Migration(flow_id, source_fpc, kind="congestion")
        self.congestion_migrations += 1
        if self.san is not None:
            self.san.on_migration_start(self.cycle, flow_id, source_fpc)
        if self.trace is not None:
            self.trace.emit(
                self.cycle * _CYCLE_PS, "engine.sched", self.trace_name,
                "migrate", flow_id, f"congestion from=fpc{source_fpc}",
            )

    def _start_eviction(
        self, fpc: FlowProcessingCore, then_swap_in: Optional[int] = None
    ) -> bool:
        """Fig 6 step ①–③: pick the coldest flow and flag it for evict."""
        if self.flow_heat is not None:
            heat = self.flow_heat
            victim = fpc.coldest_flow(
                key=lambda fid, tcb: heat.coldness_key(fid, tcb.last_active)
            )
        else:
            victim = fpc.coldest_flow()
        if victim is None or victim in self._migrations:
            return False
        if not fpc.request_evict(victim):
            return False
        self.lut.set(victim, (Location.MOVING, fpc.fpc_id))
        self._migrations[victim] = _Migration(
            victim, fpc.fpc_id, kind="capacity", then_swap_in=then_swap_in
        )
        if self.san is not None:
            self.san.on_migration_start(self.cycle, victim, fpc.fpc_id)
        if self.trace is not None:
            self.trace.emit(
                self.cycle * _CYCLE_PS, "engine.sched", self.trace_name,
                "migrate", victim, f"capacity from=fpc{fpc.fpc_id}",
            )
        return True

    def _handle_swap_in_requests(self) -> None:
        for flow_id in self.memory_manager.drain_swap_in_requests():
            self._deferred_swap_ins.append(flow_id)
        for _ in range(len(self._deferred_swap_ins)):
            flow_id = self._deferred_swap_ins.popleft()
            if flow_id not in self.memory_manager:
                continue  # already migrated or closed
            target = self._fpc_with_lowest_count(require_room=True)
            if target is not None:
                self._complete_swap_in(flow_id, target)
                continue
            # No room anywhere: evict a cold flow first, then swap in.
            fullest = self._fpc_with_lowest_count(require_room=False)
            if fullest is not None and self._start_eviction(
                fullest, then_swap_in=flow_id
            ):
                continue
            # Eviction also in flight; retry next cycle.
            self._deferred_swap_ins.append(flow_id)
            break

    def _complete_swap_in(self, flow_id: int, target: FlowProcessingCore) -> None:
        self.lut.set(flow_id, (Location.MOVING, -1))
        tcb, entry = self.memory_manager.take(flow_id)
        target.accept_tcb(tcb, entry)
        self.lut.set(flow_id, (Location.FPC, target.fpc_id))
        self.swap_ins += 1
        if self.trace is not None:
            self.trace.emit(
                self.cycle * _CYCLE_PS, "engine.sched", self.trace_name,
                "swapin", flow_id, f"to=fpc{target.fpc_id}",
            )

    def _collect_evicted(self) -> None:
        """Fig 6 steps ④–⑤: evicted TCBs arrive; update the location LUT."""
        for fpc in self.fpcs:
            for tcb in fpc.drain_evicted():
                migration = self._migrations.pop(tcb.flow_id, None)
                self.evictions += 1
                if migration is not None and migration.kind == "congestion":
                    # FPC-to-FPC rebalance: land on the idlest FPC.
                    target = self._fpc_with_lowest_count(require_room=True)
                    if target is not None and target is not fpc:
                        target.accept_tcb(tcb)
                        self.lut.set(tcb.flow_id, (Location.FPC, target.fpc_id))
                        if self.trace is not None:
                            self.trace.emit(
                                self.cycle * _CYCLE_PS, "engine.sched",
                                self.trace_name, "evicted", tcb.flow_id,
                                f"to=fpc{target.fpc_id}",
                            )
                        continue
                self.memory_manager.store(tcb)
                self.lut.set(tcb.flow_id, (Location.DRAM, -1))
                if self.trace is not None:
                    self.trace.emit(
                        self.cycle * _CYCLE_PS, "engine.sched",
                        self.trace_name, "evicted", tcb.flow_id, "to=dram",
                    )
                if migration is not None and migration.then_swap_in is not None:
                    self._deferred_swap_ins.appendleft(migration.then_swap_in)
