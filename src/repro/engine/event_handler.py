"""The event handler and event table: accumulate events without processing.

FPC avoids RMW stalls by *not* processing events on arrival.  The event
handler writes each event's information into a per-flow event-table entry
by overwriting cumulative pointers and OR-ing occurrence flags (§4.2.1).
Because an increased pointer subsumes the previous one, any number of
events accumulates in fixed-size memory with no information loss.

The event table is one half of the dual-memory scheme (§4.2.3): it is
written only by the event handler, while the TCB table is written only by
the FPU — so the two writers can never clobber each other.  A valid bit
per field lets the TCB manager construct the up-to-date TCB by overlaying
valid event fields onto the (possibly stale) TCB-table entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.memory import DualPortSRAM
from ..tcp.seq import seq_max
from ..tcp.tcb import Tcb
from .events import TcpEvent

# Valid-bit positions, one per event-table field (§4.2.3).
V_REQ = 1 << 0
V_RCV_USER = 1 << 1
V_ACK = 1 << 2
V_WND = 1 << 3
V_RCV_NXT = 1 << 4
V_FLAGS = 1 << 5
V_DUP = 1 << 6
V_IRS = 1 << 7
V_MSS = 1 << 8
V_SACK = 1 << 9

#: Bit -> field name, for the race sanitizer's findings (repro.check).
VALID_BIT_NAMES = {
    V_REQ: "req", V_RCV_USER: "rcv_user", V_ACK: "ack", V_WND: "wnd",
    V_RCV_NXT: "rcv_nxt", V_FLAGS: "flags", V_DUP: "dup", V_IRS: "irs",
    V_MSS: "mss", V_SACK: "sack",
}


def valid_bit_names(bits: int) -> str:
    """Human-readable field list for a valid-bit mask (``'ack|wnd'``)."""
    names = [name for bit, name in VALID_BIT_NAMES.items() if bits & bit]
    return "|".join(names) if names else "none"


@dataclass
class EventEntry:
    """One flow's accumulated, not-yet-processed event information."""

    valid: int = 0
    req: int = 0
    rcv_user: int = 0
    ack: int = 0
    wnd: int = 0
    rcv_nxt: int = 0
    dup_pending: int = 0
    irs: int = 0
    mss: int = 0
    sack: tuple = ()
    # Occurrence flags (OR-accumulated).
    fin: bool = False
    syn: bool = False
    rst: bool = False
    timeout: bool = False
    ack_needed: bool = False
    connect: bool = False
    close: bool = False
    last_time: float = 0.0

    def clear(self) -> None:
        """Clear all valid bits (step ④ of the §4.2.3 walk-through)."""
        self.valid = 0
        self.dup_pending = 0
        self.fin = self.syn = self.rst = False
        self.timeout = self.ack_needed = False
        self.connect = self.close = False


def accumulate_event(entry: EventEntry, event: TcpEvent) -> EventEntry:
    """Fold ``event`` into ``entry`` by overwrite/OR/increment (§4.2.1).

    This is the core of F4T's stall avoidance: cumulative pointers are
    overwritten (newer subsumes older), occurrence flags are OR-ed, and
    the one true RMW — duplicate-ACK counting — is an increment that
    completes in a single cycle.  Shared by the FPC's event handler and
    the DRAM memory manager, which handles events the same way (§4.3.1).
    """
    if event.req is not None:
        entry.req = event.req if not entry.valid & V_REQ else seq_max(entry.req, event.req)
        entry.valid |= V_REQ
    if event.rcv_user is not None:
        entry.rcv_user = (
            event.rcv_user
            if not entry.valid & V_RCV_USER
            else seq_max(entry.rcv_user, event.rcv_user)
        )
        entry.valid |= V_RCV_USER
    if event.ack is not None:
        entry.ack = event.ack if not entry.valid & V_ACK else seq_max(entry.ack, event.ack)
        entry.valid |= V_ACK
    if event.wnd is not None:
        entry.wnd = event.wnd  # last value is the up-to-date one
        entry.valid |= V_WND
    if event.rcv_nxt is not None:
        entry.rcv_nxt = (
            event.rcv_nxt
            if not entry.valid & V_RCV_NXT
            else seq_max(entry.rcv_nxt, event.rcv_nxt)
        )
        entry.valid |= V_RCV_NXT
    if event.irs is not None:
        entry.irs = event.irs
        entry.valid |= V_IRS
    if event.mss is not None:
        entry.mss = event.mss
        entry.valid |= V_MSS
    if event.sack_blocks is not None:
        entry.sack = tuple(event.sack_blocks)  # latest blocks win
        entry.valid |= V_SACK

    # The single-cycle RMW: duplicate-ACK counting (§4.2.1).
    if event.dup_incr:
        entry.dup_pending += event.dup_incr
        entry.valid |= V_DUP

    # Occurrence flags accumulate by OR.
    if (
        event.fin
        or event.syn
        or event.rst
        or event.timeout
        or event.ack_needed
        or event.connect
        or event.close
    ):
        entry.fin |= event.fin
        entry.syn |= event.syn
        entry.rst |= event.rst
        entry.timeout |= event.timeout
        entry.ack_needed |= event.ack_needed
        entry.connect |= event.connect
        entry.close |= event.close
        entry.valid |= V_FLAGS

    entry.last_time = max(entry.last_time, event.timestamp)
    return entry


def copy_entry(entry: EventEntry) -> EventEntry:
    """Shallow copy, for the memory manager's check logic (§4.3.1)."""
    clone = EventEntry()
    clone.__dict__.update(entry.__dict__)
    return clone


class EventHandler:
    """Writes events into the event table back-to-back, one per 2 cycles.

    The only true read-modify-write — duplicate-ACK counting — is done
    immediately, which is safe because an increment completes in a single
    cycle (§4.2.1).
    """

    def __init__(self, table: DualPortSRAM) -> None:
        self.table = table
        self.events_handled = 0

    def handle(self, slot: int, event: TcpEvent) -> EventEntry:
        """Accumulate ``event`` into the event-table entry at ``slot``."""
        entry: Optional[EventEntry] = self.table.read(slot)
        if entry is None:
            entry = EventEntry()
            self.table.write(slot, entry)
        accumulate_event(entry, event)
        self.events_handled += 1
        return entry


def merge_into_tcb(tcb: Tcb, entry: EventEntry) -> int:
    """Overlay valid event fields onto ``tcb`` and clear the valid bits.

    This is the TCB manager's construction of the up-to-date TCB
    (steps ②–④ of §4.2.3).  Returns the number of pending duplicate
    ACKs that were folded in, which the FPU consumes.
    """
    if entry.valid & V_REQ:
        tcb.req = seq_max(tcb.req, entry.req)
    if entry.valid & V_RCV_USER:
        tcb.rcv_user = seq_max(tcb.rcv_user, entry.rcv_user)
    if entry.valid & V_ACK:
        # snd_una advances in the FPU; here we only record the newest
        # cumulative ACK seen so the FPU can compute the delta.
        tcb.cc["_latest_ack"] = entry.ack
    if entry.valid & V_WND:
        tcb.snd_wnd = entry.wnd
    if entry.valid & V_RCV_NXT:
        tcb.rcv_nxt = seq_max(tcb.rcv_nxt, entry.rcv_nxt)
    if entry.valid & V_IRS:
        tcb.irs = entry.irs
    if entry.valid & V_MSS:
        tcb.mss = min(tcb.mss, entry.mss) if tcb.mss else entry.mss
    if entry.valid & V_SACK:
        tcb.sacked = list(entry.sack)
    dup = entry.dup_pending if entry.valid & V_DUP else 0
    if entry.valid & V_FLAGS:
        tcb.fin_received |= entry.fin
        tcb.syn_received |= entry.syn
        tcb.rst_received |= entry.rst
        tcb.timeout_pending |= entry.timeout
        tcb.ack_pending |= entry.ack_needed
        if entry.connect:
            tcb.cc["_connect_req"] = True
        tcb.close_requested |= entry.close
    tcb.last_active = max(tcb.last_active, entry.last_time)
    entry.clear()
    return dup
