"""FtEngine: the paper's contribution — a stall-free, flexible TCP engine.

Key modules: the FPC (event handler + dual-memory TCB manager + stateless
pipelined FPU + evict checker), the scheduler (location LUT, coalescing,
pending queue, migration), the DRAM memory manager, and the TX/RX data
paths.  The Testbed wires two engines back to back as in section 5.
"""

from .baseline import NullFpu, SingleCycleAccelerator, StallingAccelerator
from .buffers import SendStream
from .events import EventKind, TcpEvent, timeout_event, user_recv_event, user_send_event
from .event_handler import EventEntry, EventHandler, accumulate_event, merge_into_tcb
from .fpc import FlowProcessingCore
from .fpu import Fpu, HostNotification, NoteKind, ProcessResult, TimerOp, TxDirective
from .ftengine import ENGINE_FREQ_HZ, EngineMessage, FtEngine, FtEngineConfig
from .memory_manager import MemoryManager
from .packet_gen import PacketGenerator
from .resources import ftengine_cost, utilization_table
from .rx_parser import RxParser
from .scheduler import Location, Scheduler
from .telemetry import EngineTracer, TraceRecord
from .testbed import Testbed
from .verification import InvariantMonitor, Violation, audited_run

__all__ = [
    "ENGINE_FREQ_HZ",
    "EngineMessage",
    "EngineTracer",
    "EventEntry",
    "EventHandler",
    "EventKind",
    "FlowProcessingCore",
    "Fpu",
    "FtEngine",
    "FtEngineConfig",
    "HostNotification",
    "Location",
    "MemoryManager",
    "NoteKind",
    "NullFpu",
    "PacketGenerator",
    "ProcessResult",
    "RxParser",
    "Scheduler",
    "SendStream",
    "SingleCycleAccelerator",
    "StallingAccelerator",
    "TcpEvent",
    "Testbed",
    "TraceRecord",
    "TimerOp",
    "InvariantMonitor",
    "Violation",
    "TxDirective",
    "accumulate_event",
    "audited_run",
    "ftengine_cost",
    "merge_into_tcb",
    "timeout_event",
    "user_recv_event",
    "user_send_event",
    "utilization_table",
]
