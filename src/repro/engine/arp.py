"""ARP (RFC 826): MAC address resolution for FtEngine (§4.1.2).

FtEngine implements ARP so generated packets carry the right destination
MAC.  Outgoing packets for unresolved IPs wait in a small pending store
while a request is broadcast; replies fill the cache and release them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..net.ethernet import BROADCAST_MAC, ETHERTYPE_ARP, EthernetFrame


class ArpOp(enum.Enum):
    REQUEST = 1
    REPLY = 2


@dataclass
class ArpMessage:
    op: ArpOp
    sender_mac: int
    sender_ip: int
    target_mac: int
    target_ip: int

    def __len__(self) -> int:
        return 28  # ARP payload size on Ethernet/IPv4


class ArpModule:
    """Per-engine ARP cache, responder and resolver."""

    MAX_PENDING_PER_IP = 64
    #: Re-broadcast an unanswered request after this long (the request
    #: itself may have been lost on the wire).
    RETRY_INTERVAL_S = 1.0

    def __init__(self, my_mac: int, my_ip: int) -> None:
        self.my_mac = my_mac
        self.my_ip = my_ip
        self.cache: Dict[int, int] = {}
        #: Packets parked until their next-hop resolves: ip -> payloads.
        self._pending: Dict[int, List[Any]] = {}
        self._last_request_s: Dict[int, float] = {}
        self.requests_sent = 0
        self.replies_sent = 0

    def resolve(self, ip: int) -> Optional[int]:
        """Cached MAC for ``ip``, or None if unresolved."""
        return self.cache.get(ip)

    def queue_until_resolved(
        self, ip: int, packet: Any, now_s: float = 0.0
    ) -> Optional[EthernetFrame]:
        """Park ``packet``; returns the ARP request frame to broadcast.

        Returns None when a recent request for this IP is already
        outstanding; a lost request is re-broadcast after the retry
        interval.
        """
        waiters = self._pending.setdefault(ip, [])
        if len(waiters) < self.MAX_PENDING_PER_IP:
            waiters.append(packet)
        last = self._last_request_s.get(ip)
        if (
            len(waiters) > 1
            and last is not None
            and now_s - last < self.RETRY_INTERVAL_S
        ):
            return None
        self._last_request_s[ip] = now_s
        self.requests_sent += 1
        return EthernetFrame(
            src_mac=self.my_mac,
            dst_mac=BROADCAST_MAC,
            ethertype=ETHERTYPE_ARP,
            payload=ArpMessage(
                ArpOp.REQUEST, self.my_mac, self.my_ip, 0, ip
            ),
        )

    def handle(
        self, message: ArpMessage
    ) -> Tuple[Optional[EthernetFrame], List[Tuple[int, Any]]]:
        """Process an incoming ARP message.

        Returns (reply frame or None, released (dst_mac, packet) pairs).
        """
        released: List[Tuple[int, Any]] = []
        # Opportunistically learn the sender's mapping (RFC 826 merge).
        self.cache[message.sender_ip] = message.sender_mac
        for packet in self._pending.pop(message.sender_ip, []):
            released.append((message.sender_mac, packet))

        if message.op is ArpOp.REQUEST and message.target_ip == self.my_ip:
            self.replies_sent += 1
            reply = EthernetFrame(
                src_mac=self.my_mac,
                dst_mac=message.sender_mac,
                ethertype=ETHERTYPE_ARP,
                payload=ArpMessage(
                    ArpOp.REPLY,
                    self.my_mac,
                    self.my_ip,
                    message.sender_mac,
                    message.sender_ip,
                ),
            )
            return reply, released
        return None, released
