"""The Flow Processing Core: stall-free stateful TCP processing (§4.2).

An FPC bundles:

* the **event handler**, accumulating one input event every two cycles
  into the event table (§4.2.1);
* the **dual memory** — TCB table + event table, each written by exactly
  one writer, with per-field valid bits (§4.2.3);
* the **TCB manager**, constructing up-to-date TCBs and dispatching them
  round-robin so the FPU never sees the same flow twice within its
  pipeline depth (§4.2.2);
* the **FPU**, the stateless pipelined processor (II = 2, latency =
  algorithm-dependent);
* the **evict checker**, which intercepts processed TCBs whose evict flag
  is set and hands them to the scheduler instead of writing them back
  (§4.3.2) — guaranteeing a TCB is never evicted with unprocessed events.

The port schedule follows the paper: in one cycle the event table stores
a handled event; in the other the TCB manager constructs and dispatches a
TCB (and the FPU writes back a processed one).  Hence one event handled
per two cycles — 125 M events/s at 250 MHz.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..sim.component import Component
from ..sim.fifo import Fifo
from ..sim.memory import CAM, DualPortSRAM
from ..sim.pipeline import Pipeline
from ..tcp.tcb import Tcb
from .event_handler import EventEntry, EventHandler, merge_into_tcb
from .events import TcpEvent
from .fpu import Fpu, ProcessResult

#: Reference design: 8 FPCs x 128 flows (§4.4.2).
DEFAULT_SLOTS = 128
DEFAULT_INPUT_DEPTH = 64


class FlowProcessingCore(Component):
    """One FPC; FtEngine instantiates several in parallel (§4.4.2)."""

    def __init__(
        self,
        fpc_id: int,
        slots: int = DEFAULT_SLOTS,
        algorithm: str = "newreno",
        now_fn: Optional[Callable[[], float]] = None,
        fpu: Optional[Fpu] = None,
    ) -> None:
        super().__init__(f"fpc{fpc_id}")
        self.fpc_id = fpc_id
        self.slots = slots
        self.now_fn = now_fn or (lambda: 0.0)

        self.tcb_table: DualPortSRAM[Tcb] = DualPortSRAM(slots, f"fpc{fpc_id}.tcb")
        self.event_table: DualPortSRAM[EventEntry] = DualPortSRAM(
            slots, f"fpc{fpc_id}.events"
        )
        self.cam: CAM[int] = CAM(slots, f"fpc{fpc_id}.cam")
        self.event_handler = EventHandler(self.event_table)
        self.fpu = fpu if fpu is not None else Fpu(algorithm)
        #: (slot, dup_count) travels the pipeline with the TCB snapshot.
        self.pipe: Pipeline[Tuple[int, Tcb, int], Tuple[int, Tcb, int]] = Pipeline(
            latency=self.fpu.latency_cycles,
            initiation_interval=2,
            name=f"fpc{fpc_id}.fpu-pipe",
        )

        self.input: Fifo[TcpEvent] = Fifo(DEFAULT_INPUT_DEPTH, f"fpc{fpc_id}.in")
        #: Conservative activity flag: False guarantees every work
        #: container is empty (an idle FPC can only gain work through
        #: offer_event/request_evict, which set it); True means the
        #: owner must check for real.  Lets the engine's per-cycle scan
        #: touch one attribute for confirmed-idle FPCs.
        self._maybe_busy = True
        self._dispatch_queue: Deque[int] = deque()  # flow ids needing the FPU
        self._queued: Set[int] = set()
        self._in_flight: Set[int] = set()
        self._evict_requested: Set[int] = set()

        # Per-cycle outputs drained by FtEngine.
        self.out_results: List[ProcessResult] = []
        self.out_evicted: List[Tcb] = []

        self.events_accepted = 0
        self.tcbs_processed = 0

        #: Observability (repro.obs): a TraceBus, or None (free default).
        self.trace = None
        self.trace_name = self.name
        #: Race sanitizer (repro.check): shadow-state checker, or None.
        self.san = None

    # -------------------------------------------------------------- flows
    @property
    def flow_count(self) -> int:
        return len(self.cam)

    @property
    def has_room(self) -> bool:
        return not self.cam.full

    def resident_flows(self) -> List[int]:
        return self.cam.keys()

    def accept_tcb(self, tcb: Tcb, entry: Optional[EventEntry] = None) -> None:
        """Install a TCB (new flow or swap-in from DRAM, §4.3.2).

        Uses the dedicated write port, so it never contends with the
        FPU's writeback (§4.3.2).  ``entry`` carries any events that were
        handled in the memory manager while the flow lived in DRAM.
        """
        slot = self.cam.insert(tcb.flow_id)
        tcb.evict_flag = False
        written = entry if entry is not None else EventEntry()
        self.tcb_table.write(slot, tcb)
        self.event_table.write(slot, written)
        if self.san is not None:
            self.san.on_accept(
                self.fpc_id, self.cycle, slot, tcb.flow_id, written.valid
            )
        pending = (
            (entry is not None and entry.valid)
            or tcb.can_send_now()
            or tcb.cc.get("_connect_req")
            or tcb.cc.get("_latest_ack") is not None
            or tcb.syn_received
            or tcb.fin_received
            or tcb.rst_received
        )
        if pending:
            self._mark_pending(tcb.flow_id)

    def request_evict(self, flow_id: int) -> bool:
        """Scheduler asks to evict ``flow_id``; sets the TCB's evict flag."""
        slot = self.cam.try_lookup(flow_id)
        if slot is None:
            return False
        tcb = self.tcb_table.read(slot)
        tcb.evict_flag = True
        if self.san is not None:
            self.san.on_evict_request(self.fpc_id, self.cycle, flow_id)
        self._evict_requested.add(flow_id)
        # Route the flow to the FPU so the evict checker sees it soon.
        self._mark_pending(flow_id, priority=True)
        self._maybe_busy = True
        return True

    def coldest_flow(self, key=None) -> Optional[int]:
        """Least-recently-active resident flow eligible for eviction.

        ``key(flow_id, tcb) -> sortable`` overrides the ``last_active``
        recency ranking — the predictive placement policy passes a
        sketch-coldness key so heavy hitters are evicted last.
        """
        best_id: Optional[int] = None
        best_rank = None
        for flow_id in self.cam.keys():
            if flow_id in self._in_flight or flow_id in self._evict_requested:
                continue
            tcb = self.tcb_table.read(self.cam.lookup(flow_id))
            rank = tcb.last_active if key is None else key(flow_id, tcb)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_id = flow_id
        return best_id

    def peek_tcb(self, flow_id: int) -> Optional[Tcb]:
        slot = self.cam.try_lookup(flow_id)
        return None if slot is None else self.tcb_table.read(slot)

    # -------------------------------------------------------------- queue
    def _mark_pending(self, flow_id: int, priority: bool = False) -> None:
        if flow_id in self._queued:
            return
        self._queued.add(flow_id)
        if priority:
            self._dispatch_queue.appendleft(flow_id)
        else:
            self._dispatch_queue.append(flow_id)

    def offer_event(self, event: TcpEvent) -> bool:
        """Scheduler pushes an event; False signals backpressure (§4.4.2)."""
        self._maybe_busy = True
        return self.input.push(event)

    @property
    def backpressure(self) -> bool:
        return len(self.input) > self.input.capacity // 2

    # -------------------------------------------------------------- clock
    def busy(self) -> bool:
        # Hot path: direct container truthiness.
        return bool(
            self.input._items
            or self._dispatch_queue
            or self._in_flight
            or self.out_results
            or self.out_evicted
        )

    def tick(self) -> None:
        self.cycle += 1
        # Retire first so a writeback and a dispatch can share a cycle
        # on the two BRAM ports (§4.2.3's two-cycle schedule).
        self._retire()
        if self.cycle % 2 == 0:
            self._handle_one_event()
        else:
            self._dispatch_one()

    def _handle_one_event(self) -> None:
        event = self.input.try_pop()
        if event is None:
            return
        slot = self.cam.try_lookup(event.flow_id)
        if slot is None:
            # The scheduler guarantees routing correctness (§4.3.2); a
            # miss here means the flow was evicted after routing, which
            # the moving-state protocol prevents.  Drop defensively.
            return
        entry = self.event_handler.handle(slot, event)
        self.events_accepted += 1
        if self.san is not None:
            self.san.on_event_write(
                self.fpc_id, self.cycle, slot, event.flow_id, entry.valid
            )
        if self.trace is not None:
            self.trace.emit(
                self.now_fn() * 1e12, "engine.fpc", self.trace_name,
                "handle", event.flow_id, event.kind.value,
            )
        self._mark_pending(event.flow_id)

    def _dispatch_one(self) -> None:
        if not self._dispatch_queue or not self.pipe.can_issue(self.cycle):
            return
        # Round-robin over pending flows, skipping in-flight ones (the
        # "distance" that prevents RMW hazards, §4.2.2).
        for _ in range(len(self._dispatch_queue)):
            flow_id = self._dispatch_queue.popleft()
            if flow_id in self._in_flight:
                self._dispatch_queue.append(flow_id)
                continue
            slot = self.cam.try_lookup(flow_id)
            if slot is None:
                self._queued.discard(flow_id)
                continue
            self._queued.discard(flow_id)
            base = self.tcb_table.read(slot)
            snapshot = base.clone()
            entry = self.event_table.read(slot)
            if self.san is not None:
                self.san.on_construct(
                    self.fpc_id, self.cycle, slot, flow_id,
                    entry.valid if entry is not None else 0,
                )
            dup = merge_into_tcb(snapshot, entry) if entry is not None else 0
            self._in_flight.add(flow_id)
            issued = self.pipe.issue((slot, snapshot, dup), self.cycle)
            assert issued, "TCB manager respects the FPU initiation interval"
            return

    def _retire(self) -> None:
        for slot, tcb, dup in self.pipe.retire_ready(self.cycle):
            result = self.fpu.process(tcb, dup, self.now_fn())
            self.tcbs_processed += 1
            self._in_flight.discard(tcb.flow_id)
            self.out_results.append(result)
            if tcb.flow_id in self._evict_requested:
                # The evict checker consults the request register, not
                # the TCB image: a request that arrived while this TCB
                # was in the pipeline set the flag on the table copy
                # only, and the write-back below would silently drop it
                # — leaving the flow MOVING forever.
                tcb.evict_flag = True
            if tcb.evict_flag and tcb.flow_id in self._evict_requested:
                # Evict checker: divert the *processed* TCB (§4.3.2) —
                # but only once every already-routed event has been
                # handled and processed (the scheduler's moving state
                # blocks new routing, so the backlog is bounded).
                entry = self.event_table.read(slot)
                backlog = (entry is not None and entry.valid) or any(
                    ev.flow_id == tcb.flow_id for ev in self.input
                )
                if backlog:
                    self.tcb_table.write(slot, tcb)
                    if self.san is not None:
                        self.san.on_tcb_write(
                            self.fpc_id, self.cycle, slot, tcb.flow_id,
                            self.fpu.writer_id,
                        )
                    self._mark_pending(tcb.flow_id, priority=True)
                    continue
                self._evict_requested.discard(tcb.flow_id)
                self.cam.remove(tcb.flow_id)
                self.tcb_table.clear(slot)
                self.event_table.clear(slot)
                tcb.evict_flag = False
                if self.san is not None:
                    self.san.on_evicted(
                        self.fpc_id, self.cycle, slot, tcb.flow_id
                    )
                self.out_evicted.append(tcb)
                if self.trace is not None:
                    self.trace.emit(
                        self.now_fn() * 1e12, "engine.fpc", self.trace_name,
                        "evict", tcb.flow_id, tcb.state.value,
                    )
                continue
            current_slot = self.cam.try_lookup(tcb.flow_id)
            if current_slot is not None:
                self.tcb_table.write(current_slot, tcb)
                if self.san is not None:
                    self.san.on_tcb_write(
                        self.fpc_id, self.cycle, current_slot, tcb.flow_id,
                        self.fpu.writer_id,
                    )
                entry = self.event_table.read(current_slot)
                if entry is not None and entry.valid:
                    # Events accumulated while we were in the pipeline.
                    self._mark_pending(tcb.flow_id)

    def drain_results(self) -> List[ProcessResult]:
        results, self.out_results = self.out_results, []
        return results

    def drain_evicted(self) -> List[Tcb]:
        evicted, self.out_evicted = self.out_evicted, []
        return evicted

    def reset(self) -> None:
        super().reset()
        self.input.clear()
        self._dispatch_queue.clear()
        self._queued.clear()
        self._in_flight.clear()
        self._evict_requested.clear()
        self.out_results.clear()
        self.out_evicted.clear()
        self.pipe.flush()
