"""FPGA resource model: Fig 7b's utilization table, analytically.

We have no Vivado, so per-module LUT/FF/BRAM costs are an analytic model
fit to the paper's two data points: FtEngine with one FPC uses 16% LUTs,
11% FFs, 27% BRAMs of a Xilinx U280; with eight FPCs 23%, 15%, 32%
(§4.7).  The per-FPC increment is derived exactly from the difference,
and the fixed infrastructure is broken down over the named modules in
plausible proportions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Xilinx Alveo U280 capacity (XCU280 device datasheet).
U280_LUT = 1_303_680
U280_FF = 2_607_360
U280_BRAM = 2_016  # 36 Kb blocks


@dataclass(frozen=True)
class ResourceVector:
    lut: int
    ff: int
    bram: int

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.lut + other.lut, self.ff + other.ff, self.bram + other.bram
        )

    def scaled(self, factor: int) -> "ResourceVector":
        return ResourceVector(self.lut * factor, self.ff * factor, self.bram * factor)

    def utilization(self) -> Tuple[float, float, float]:
        """(LUT%, FF%, BRAM%) of the U280."""
        return (
            100.0 * self.lut / U280_LUT,
            100.0 * self.ff / U280_FF,
            100.0 * self.bram / U280_BRAM,
        )


#: Per-FPC increment, derived from Fig 7b's 1-FPC vs 8-FPC totals:
#: ΔLUT = (23% - 16%) x 1 303 680 / 7 ≈ 13 037 per FPC, etc.
FPC_COST = ResourceVector(lut=13_037, ff=14_899, bram=14)

#: Fixed infrastructure, split over the modules of Fig 3.  The split is
#: modelled (no synthesis), but each entry is sized plausibly and the
#: column sums reproduce Fig 7b's totals.
MODULE_COSTS: Dict[str, ResourceVector] = {
    "ethernet-mac (322MHz)": ResourceVector(16_000, 24_000, 24),
    "pcie-dma (host interface)": ResourceVector(72_000, 110_000, 130),
    "hbm/dram controller": ResourceVector(30_000, 45_000, 60),
    "scheduler (+location LUT)": ResourceVector(22_000, 28_000, 24),
    "memory manager (+tcb cache)": ResourceVector(15_000, 20_000, 96),
    "packet generator": ResourceVector(12_000, 16_000, 32),
    "rx parser (+cuckoo, reassembly)": ResourceVector(18_000, 24_000, 140),
    "arp + icmp": ResourceVector(6_552, 8_011, 10),
    "glue (per-fpc switches)": ResourceVector(4_000, 6_900, 14),
}

#: Extra glue per additional FPC (§4.4.2: only glue logic scales).
GLUE_PER_EXTRA_FPC = ResourceVector(lut=0, ff=0, bram=0)


def infrastructure_cost() -> ResourceVector:
    total = ResourceVector(0, 0, 0)
    for cost in MODULE_COSTS.values():
        total = total + cost
    return total


def ftengine_cost(num_fpcs: int) -> ResourceVector:
    """Total FtEngine resources for a given FPC count."""
    if num_fpcs < 1:
        raise ValueError("need at least one FPC")
    total = infrastructure_cost() + FPC_COST.scaled(num_fpcs)
    total = total + GLUE_PER_EXTRA_FPC.scaled(max(0, num_fpcs - 1))
    return total


def utilization_table(
    fpc_counts: Optional[List[int]] = None,
) -> List[Dict[str, object]]:
    """Rows matching Fig 7b: design, LUT%, FF%, BRAM%."""
    if fpc_counts is None:
        fpc_counts = [1, 8]
    rows: List[Dict[str, object]] = []
    for count in fpc_counts:
        lut, ff, bram = ftengine_cost(count).utilization()
        rows.append(
            {
                "design": f"FtEngine ({count} FPC{'s' if count > 1 else ''})",
                "lut_pct": round(lut, 1),
                "ff_pct": round(ff, 1),
                "bram_pct": round(bram, 1),
            }
        )
    for name, cost in MODULE_COSTS.items():
        lut, ff, bram = cost.utilization()
        rows.append(
            {
                "design": name,
                "lut_pct": round(lut, 1),
                "ff_pct": round(ff, 1),
                "bram_pct": round(bram, 1),
            }
        )
    lut, ff, bram = FPC_COST.utilization()
    rows.append(
        {
            "design": "flow processing core (each)",
            "lut_pct": round(lut, 1),
            "ff_pct": round(ff, 1),
            "bram_pct": round(bram, 1),
        }
    )
    return rows
