"""ICMP (RFC 792): diagnostics such as ping (§4.1.2).

FtEngine answers echo requests in hardware so operators can ping the
accelerated host.  Only echo request/reply are modelled; they are what
the paper names ICMP for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class IcmpType(enum.Enum):
    ECHO_REPLY = 0
    ECHO_REQUEST = 8


@dataclass
class IcmpMessage:
    icmp_type: IcmpType
    src_ip: int
    dst_ip: int
    identifier: int = 0
    sequence: int = 0
    payload: bytes = b""

    def __len__(self) -> int:
        return 8 + len(self.payload)  # ICMP header + data


class IcmpModule:
    """Echo responder for one engine."""

    def __init__(self, my_ip: int) -> None:
        self.my_ip = my_ip
        self.requests_answered = 0
        self.replies_received = 0

    def handle(self, message: IcmpMessage) -> Optional[IcmpMessage]:
        """Answer echo requests addressed to us; record replies."""
        if message.dst_ip != self.my_ip:
            return None
        if message.icmp_type is IcmpType.ECHO_REQUEST:
            self.requests_answered += 1
            return IcmpMessage(
                IcmpType.ECHO_REPLY,
                src_ip=self.my_ip,
                dst_ip=message.src_ip,
                identifier=message.identifier,
                sequence=message.sequence,
                payload=message.payload,
            )
        if message.icmp_type is IcmpType.ECHO_REPLY:
            self.replies_received += 1
        return None
