"""The packet generator: FtEngine's TX data path (§4.1.2).

The generator is passive — it builds packets only when an FPC requests a
transfer.  It generates TCP/IP headers from the directive, fetches the
payload from the flow's TCP data buffer, and splits requests larger than
the maximum segment size into multiple segments.  It is stateless and
pipelinable, which is why parallelizing it for more FPCs is easy
(§4.4.2).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..tcp.options import WINDOW_SCALE
from ..tcp.segment import FLAG_ACK, FLAG_FIN, FLAG_PSH, FLAG_SYN, FlowKey, TcpSegment
from ..tcp.seq import seq_add
from .buffers import SendStream
from .fpu import TxDirective


class PacketGenerator:
    """Builds wire segments from FPC transmit directives."""

    def __init__(
        self,
        key_of_flow: Callable[[int], Optional[FlowKey]],
        stream_of_flow: Callable[[int], Optional[SendStream]],
    ) -> None:
        self._key_of_flow = key_of_flow
        self._stream_of_flow = stream_of_flow
        self.packets_generated = 0
        self.bytes_generated = 0
        self.splits = 0

    def generate(
        self,
        directive: TxDirective,
        mss: int,
        sack_blocks=None,
    ) -> List[TcpSegment]:
        """Expand one directive into one or more segments.

        ``sack_blocks`` — the receiver's out-of-order holdings — are
        attached to ACK-bearing segments (RFC 2018) so the peer can
        retransmit only the holes.
        """
        key = self._key_of_flow(directive.flow_id)
        if key is None:
            return []  # flow torn down after the FPU pass; nothing to send
        segments: List[TcpSegment] = []
        if sack_blocks and directive.flags & FLAG_ACK and not directive.flags & FLAG_SYN:
            if directive.options is None:
                from ..tcp.options import TcpOptions

                directive.options = TcpOptions()
            directive.options.sack_blocks = list(sack_blocks)

        if directive.length == 0:
            segments.append(self._bare_segment(key, directive, directive.seq))
        else:
            stream = self._stream_of_flow(directive.flow_id)
            if stream is None:
                return []
            remaining = directive.length
            seq = directive.seq
            while remaining > 0:
                take = min(remaining, mss)
                payload = stream.fetch(seq, take)
                segment = self._bare_segment(key, directive, seq)
                segment.payload = payload
                # PSH only on the final segment of the request.
                if remaining > take:
                    segment.flags &= ~FLAG_PSH
                    self.splits += 1
                segments.append(segment)
                seq = seq_add(seq, take)
                remaining -= take

        self.packets_generated += len(segments)
        self.bytes_generated += sum(len(s.payload) for s in segments)
        return segments

    def _bare_segment(
        self, key: FlowKey, directive: TxDirective, seq: int
    ) -> TcpSegment:
        # RFC 7323: the window on a SYN is never scaled; afterwards the
        # 16-bit field carries window >> WINDOW_SCALE.
        if directive.flags & FLAG_SYN:
            wire_window = min(0xFFFF, directive.window)
        else:
            wire_window = min(0xFFFF, directive.window >> WINDOW_SCALE)
        segment = TcpSegment(
            src_ip=key.src_ip,
            dst_ip=key.dst_ip,
            src_port=key.src_port,
            dst_port=key.dst_port,
            seq=seq,
            ack=directive.ack,
            flags=directive.flags,
            window=wire_window,
        )
        if directive.options is not None:
            segment.options = directive.options
        return segment
