"""TCP events: the unit of work flowing through FtEngine.

The control path processes three types of events — user requests,
received packets, and timeouts (§4.1.2).  Events carry *cumulative
pointers* rather than deltas (the F4T library sends the pointer itself,
e.g. 1300, not the 300 B length, §4.2.1), which is what makes them
accumulable by overwriting and coalescible in the scheduler (§4.4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..tcp.seq import seq_ge, seq_max


class EventKind(enum.Enum):
    USER_REQ = "user_req"  # send()/recv()/connect()/close() from the host
    RX_PACKET = "rx_packet"  # pre-processed by the RX parser
    TIMEOUT = "timeout"  # from the timer module


@dataclass
class TcpEvent:
    """One control-path event, already resolved to a flow ID.

    All pointer fields are sequence-space cumulative values; ``None``
    means "this event does not update that field".
    """

    kind: EventKind
    flow_id: int
    #: Send request pointer: app asked to transmit bytes up to here.
    req: Optional[int] = None
    #: Receive consumption pointer: app has read bytes up to here.
    rcv_user: Optional[int] = None
    #: Latest cumulative ACK from the peer.
    ack: Optional[int] = None
    #: Latest peer-advertised window (bytes, already de-scaled).
    wnd: Optional[int] = None
    #: Reassembled in-order receive pointer from the RX parser.
    rcv_nxt: Optional[int] = None
    #: Duplicate-ACK increment (the one true RMW; counted immediately).
    dup_incr: int = 0
    #: Selective-acknowledgment blocks carried on the packet (RFC 2018).
    #: The latest blocks describe the receiver's current out-of-order
    #: holdings, so overwrite accumulation is lossless.
    sack_blocks: Optional[List[Tuple[int, int]]] = None
    #: Occurrence flags — accumulate by OR.
    fin: bool = False
    syn: bool = False
    rst: bool = False
    timeout: bool = False
    #: The parser accepted payload, so an ACK must go out.
    ack_needed: bool = False
    #: Application requested connection setup / teardown.
    connect: bool = False
    close: bool = False
    #: Peer's initial sequence number (valid with ``syn``).
    irs: Optional[int] = None
    #: Negotiated MSS carried on SYN options.
    mss: Optional[int] = None
    #: Event creation time in seconds (for RTT sampling and stats).
    timestamp: float = 0.0
    #: True when this RX event is eligible for coalescing: in-order, no
    #: drops/reordering observed by the parser (GRO-like rule, §4.4.1).
    coalescible: bool = True

    def information_preserving_merge(self, later: "TcpEvent") -> bool:
        """Coalesce ``later`` (same flow, arrived after) into self.

        Returns False — refusing the merge — whenever any information
        would be lost (duplicate-ACK counts, occurrence of SYN on a
        non-SYN, parser-flagged non-coalescible packets).  Mirrors the
        scheduler rule: "coalesce only if no information is lost"
        (§4.4.1).
        """
        if later.flow_id != self.flow_id:
            return False
        if later.dup_incr or self.dup_incr:
            return False  # counts cannot be overwritten
        if not later.coalescible or not self.coalescible:
            return False
        # Cumulative pointers: keep the later (larger) value.
        for attr in ("req", "rcv_user", "ack", "rcv_nxt"):
            new = getattr(later, attr)
            if new is not None:
                old = getattr(self, attr)
                setattr(self, attr, new if old is None else seq_max(old, new))
        if later.wnd is not None:
            self.wnd = later.wnd
        if later.sack_blocks is not None:
            self.sack_blocks = later.sack_blocks
        if later.irs is not None:
            self.irs = later.irs
        if later.mss is not None:
            self.mss = later.mss
        # Occurrence flags accumulate by OR.
        self.fin |= later.fin
        self.syn |= later.syn
        self.rst |= later.rst
        self.timeout |= later.timeout
        self.ack_needed |= later.ack_needed
        self.connect |= later.connect
        self.close |= later.close
        self.timestamp = max(self.timestamp, later.timestamp)
        return True


def user_send_event(flow_id: int, req_pointer: int, now_s: float) -> TcpEvent:
    """send(): the library transmits the new request *pointer* (§4.2.1)."""
    return TcpEvent(
        EventKind.USER_REQ, flow_id, req=req_pointer, timestamp=now_s
    )


def user_recv_event(flow_id: int, rcv_user: int, now_s: float) -> TcpEvent:
    """recv(): consumption pointer update so the window can reopen."""
    return TcpEvent(
        EventKind.USER_REQ, flow_id, rcv_user=rcv_user, timestamp=now_s
    )


def timeout_event(flow_id: int, now_s: float) -> TcpEvent:
    return TcpEvent(EventKind.TIMEOUT, flow_id, timeout=True, timestamp=now_s)
