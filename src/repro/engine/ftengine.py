"""FtEngine: the full FPGA TCP accelerator, assembled (§4.1.2, Fig 3).

The engine bundles the control path (scheduler, FPCs, memory manager,
timers), the TX data path (packet generator), the RX data path (parser
with cuckoo flow lookup and logical reassembly), and ARP/ICMP.  It is a
clocked component: one :meth:`tick` is one 250 MHz cycle.

The host-facing API (``connect`` / ``listen`` / ``send_data`` /
``recv_data`` / ``close_flow``) models the 16 B command interface the
F4T library uses (§4.1.1); notifications flowing back to the software
are queued as :class:`EngineMessage` objects that the library drains.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from collections import deque

from ..net.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
    make_mac,
)
from ..mem.advisor import POLICY_PREDICTIVE, FlowHeat
from ..mem.hierarchy import CacheGeometry
from ..mem.sketch import make_sketch
from ..net.wire import WirePort
from ..sim.component import Component
from ..sim.stats import Counters
from ..tcp.segment import FLAG_ACK, FLAG_RST, FlowKey, TcpSegment
from ..tcp.seq import SEQ_MOD, seq_add
from ..tcp.state_machine import TcpState
from ..tcp.tcb import DEFAULT_BUFFER_BYTES, DEFAULT_MSS, Tcb
from ..tcp.timers import TimerWheel
from .arp import ArpMessage, ArpModule
from .buffers import SendStream
from .events import (
    EventKind,
    TcpEvent,
    timeout_event,
    user_recv_event,
    user_send_event,
)
from .fpc import FlowProcessingCore
from .fpu import NoteKind, ProcessResult, TimerOp
from .icmp import IcmpMessage, IcmpModule
from .memory_manager import MemoryManager
from .rx_parser import RxParser
from .packet_gen import PacketGenerator
from .scheduler import Scheduler
from ..sim.memory import DRAMModel

#: FtEngine's main clock (§4.1): control path at 250 MHz.
ENGINE_FREQ_HZ = 250e6
#: Exact integer picoseconds per 250 MHz cycle — kernel time is integer
#: ps end-to-end (simlint F4T007); 250 MHz divides 1 THz evenly.
ENGINE_PERIOD_PS = 10**12 // int(ENGINE_FREQ_HZ)


@dataclass
class FtEngineConfig:
    """Reference design parameters (§4.4.2, §4.7)."""

    num_fpcs: int = 8
    fpc_slots: int = 128
    algorithm: str = "newreno"
    #: 'hbm' (460 GB/s) or 'ddr4' (38 GB/s) for the TCB store (§4.7).
    memory: str = "hbm"
    coalescing: bool = True
    mss: int = DEFAULT_MSS
    send_buffer: int = DEFAULT_BUFFER_BYTES
    recv_buffer: int = DEFAULT_BUFFER_BYTES
    tcb_cache_entries: int = 512
    #: repro.mem TCB cache geometry spec (e.g. "128x4:lru/1024x1:direct");
    #: None = one direct-mapped level of ``tcb_cache_entries`` sets, the
    #: paper-faithful default the pinned fingerprints assume.
    cache_geometry: Optional[str] = None
    #: 'reactive' (paper: migrate on observed congestion) or
    #: 'predictive' (sketch-driven heavy-hitter placement).
    placement_policy: str = "reactive"
    #: Frequency sketch kind/width backing freq eviction and the
    #: predictive policy ('countmin' | 'spacesaving' | 'exact').
    sketch: str = "countmin"
    sketch_width: int = 1024

    @property
    def sram_flow_capacity(self) -> int:
        return self.num_fpcs * self.fpc_slots


@dataclass
class EngineMessage:
    """A command FtEngine sends up to the software stack (§4.1.1)."""

    kind: str  # 'acked' | 'connected' | 'accepted' | 'data' | 'eof' | 'closed' | 'reset'
    flow_id: int
    value: int = 0


@dataclass
class _FlowRecord:
    """Engine-side per-flow metadata outside the TCB."""

    key: FlowKey
    stream: SendStream
    listen_port: Optional[int] = None  # set for passively opened flows
    closed: bool = False


class FtEngine(Component):
    """One FtEngine instance attached to one wire port."""

    _ids = itertools.count(1)

    def __init__(
        self,
        ip: int,
        config: Optional[FtEngineConfig] = None,
        port: Optional[WirePort] = None,
        name: Optional[str] = None,
    ) -> None:
        node_id = next(self._ids)
        super().__init__(name or f"ftengine{node_id}")
        self.ip = ip
        self.mac = make_mac(node_id)
        self.config = config or FtEngineConfig()
        self.port = port

        dram = DRAMModel.hbm() if self.config.memory == "hbm" else DRAMModel.ddr4()
        self.dram = dram

        # repro.mem wiring: one shared sketch backs both the cache's
        # freq eviction and the scheduler's FlowHeat advisor.  In the
        # default config (reactive policy, direct geometry) nothing is
        # built and the hot path is exactly the paper's.
        geometry = (
            None
            if self.config.cache_geometry is None
            else CacheGeometry.parse(self.config.cache_geometry)
        )
        predictive = self.config.placement_policy == POLICY_PREDICTIVE
        needs_sketch = predictive or (geometry is not None and geometry.uses_sketch)
        sketch = (
            make_sketch(self.config.sketch, width=self.config.sketch_width)
            if needs_sketch
            else None
        )
        self.flow_heat = FlowHeat(sketch) if predictive else None
        if self.flow_heat is not None:
            self.flow_heat.time_ps_fn = lambda: self.time_ps

        self.memory_manager = MemoryManager(
            dram,
            cache_entries=self.config.tcb_cache_entries,
            time_ps_fn=lambda: self.time_ps,
            geometry=geometry,
            sketch=sketch,
            # The advisor records every submitted event; the cache must
            # not feed the same sketch again on each access.
            sketch_own_updates=self.flow_heat is None,
        )
        self.fpcs = [
            FlowProcessingCore(
                i,
                slots=self.config.fpc_slots,
                algorithm=self.config.algorithm,
                now_fn=lambda: self.now_s,
            )
            for i in range(self.config.num_fpcs)
        ]
        self.scheduler = Scheduler(
            self.fpcs,
            self.memory_manager,
            coalescing=self.config.coalescing,
            flow_heat=self.flow_heat,
            placement_policy=self.config.placement_policy,
        )
        self.timers = TimerWheel()
        self.arp = ArpModule(self.mac, ip)
        self.icmp = IcmpModule(ip)
        self.rx_parser = RxParser(
            now_fn=lambda: self.now_s,
            passive_open=self._passive_open,
            recv_buffer_bytes=self.config.recv_buffer,
        )
        self.packet_gen = PacketGenerator(
            key_of_flow=self._key_of_flow,
            stream_of_flow=self._stream_of_flow,
        )

        self.flows: Dict[int, _FlowRecord] = {}
        #: port -> per-thread accept queues (SO_REUSEPORT, §4.6).
        self.listening: Dict[int, Dict[int, Deque[int]]] = {}
        self._next_flow_id = 0
        self._next_ephemeral_port = 40000

        #: Events that could not enter the scheduler yet (backpressure).
        self._event_backlog: Deque[TcpEvent] = deque()
        #: Per-thread message queues: receive-side scaling keeps all of
        #: a flow's commands on one queue for cache locality (§4.6).
        self.host_messages: Dict[int, Deque[EngineMessage]] = {0: deque()}
        #: Bumped on every host-queue mutation (post or drain) so
        #: pollers can skip rescanning untouched queues.
        self.msg_epoch = 0
        self._flow_thread: Dict[int, int] = {}
        self._accept_rr: Dict[int, int] = {}  # per-port round-robin index

        self.counters = Counters()

        #: Observability (repro.obs): a TraceBus, or None — the default —
        #: which keeps every emit site at one attribute test of cost.
        self.trace = None
        self.trace_name = self.name
        self._trace_last_state: Dict[int, TcpState] = {}

    # ------------------------------------------------------------- threads
    def register_thread(self, thread_id: int) -> None:
        """Attach an application thread (its own queues, §4.6)."""
        self.host_messages.setdefault(thread_id, deque())
        for queues in self.listening.values():
            queues.setdefault(thread_id, deque())

    @property
    def registered_threads(self) -> List[int]:
        return sorted(self.host_messages)

    def thread_of_flow(self, flow_id: int) -> int:
        return self._flow_thread.get(flow_id, 0)

    def _assign_flow_to_thread(self, flow_id: int, thread_id: int) -> None:
        self._flow_thread[flow_id] = thread_id

    # ---------------------------------------------------------------- time
    @property
    def time_ps(self) -> int:
        return self.cycle * ENGINE_PERIOD_PS

    @property
    def now_s(self) -> float:
        return self.time_ps / 1e12

    # ------------------------------------------------------------ flow API
    def _alloc_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def _initial_seq(self, flow_id: int) -> int:
        # Deterministic ISS placed near the wrap point now and then so
        # sequence-wrap paths get continuous exercise.
        return (0xFFFF8000 + flow_id * 99991) % SEQ_MOD

    def _key_of_flow(self, flow_id: int) -> Optional[FlowKey]:
        record = self.flows.get(flow_id)
        return None if record is None else record.key

    def _stream_of_flow(self, flow_id: int) -> Optional[SendStream]:
        record = self.flows.get(flow_id)
        return None if record is None else record.stream

    def _create_flow(self, key: FlowKey, listen_port: Optional[int] = None) -> int:
        flow_id = self._alloc_flow_id()
        iss = self._initial_seq(flow_id)
        tcb = Tcb(
            flow_id=flow_id,
            key=key,
            iss=iss,
            req=iss,  # nothing requested yet; the SYN consumes iss itself
            snd_una=iss,
            snd_nxt=iss,
            mss=self.config.mss,
            send_buf=self.config.send_buffer,
            rcv_buf=self.config.recv_buffer,
            last_active=self.now_s,
        )
        self.flows[flow_id] = _FlowRecord(
            key=key,
            stream=SendStream(seq_add(iss, 1), self.config.send_buffer),
            listen_port=listen_port,
        )
        self.rx_parser.register_flow(key, flow_id, rcv_nxt=0)
        self.scheduler.register_new_flow(tcb)
        self.counters.add("flows_created")
        return flow_id

    def connect(
        self,
        dst_ip: int,
        dst_port: int,
        src_port: Optional[int] = None,
        thread_id: int = 0,
    ) -> int:
        """Active open; returns the flow ID immediately (SYN in flight)."""
        if src_port is None:
            src_port = self._next_ephemeral_port
            self._next_ephemeral_port += 1
        key = FlowKey(self.ip, src_port, dst_ip, dst_port)
        flow_id = self._create_flow(key)
        self._assign_flow_to_thread(flow_id, thread_id)
        self._submit(
            TcpEvent(
                EventKind.USER_REQ, flow_id, connect=True, timestamp=self.now_s
            )
        )
        return flow_id

    def listen(self, port: int) -> None:
        """Open a passive listening port with per-thread accept queues."""
        queues = self.listening.setdefault(port, {})
        for thread_id in self.registered_threads:
            queues.setdefault(thread_id, deque())

    def accept(self, port: int, thread_id: int = 0) -> Optional[int]:
        """Pop an established connection from this thread's accept queue.

        SO_REUSEPORT semantics (§4.6): new connections are distributed
        evenly across the registered threads' queues.
        """
        queues = self.listening.get(port)
        if not queues:
            return None
        queue = queues.get(thread_id)
        if not queue:
            return None
        return queue.popleft()

    def _passive_open(self, segment: TcpSegment) -> Optional[int]:
        """RX-parser callback: a SYN arrived for a port we listen on."""
        if segment.dst_ip != self.ip or segment.dst_port not in self.listening:
            return None
        key = segment.flow_key.reversed()  # local view: we are the source
        flow_id = self._create_flow(key, listen_port=segment.dst_port)
        self.counters.add("passive_opens")
        return flow_id

    # --------------------------------------------------------- socket data
    def send_data(self, flow_id: int, data: bytes) -> int:
        """Buffer ``data`` and submit the new request pointer (§4.2.1).

        Returns the number of bytes accepted (bounded by buffer room);
        the library implements blocking/EAGAIN on top of this.
        """
        record = self.flows.get(flow_id)
        if record is None:
            raise KeyError(f"unknown flow {flow_id}")
        accept = min(len(data), record.stream.room)
        if accept == 0:
            return 0
        pointer = record.stream.append(data[:accept])
        self._submit(user_send_event(flow_id, pointer, self.now_s))
        self.counters.add("send_requests")
        return accept

    def readable(self, flow_id: int) -> int:
        return self.rx_parser.readable(flow_id)

    def recv_data(self, flow_id: int, nbytes: int) -> bytes:
        """Read reassembled in-order data; advances the rcv_user pointer."""
        data = self.rx_parser.read(flow_id, nbytes)
        if data:
            state = self.rx_parser.rx_states.get(flow_id)
            # rcv_user = rcv_nxt - still-readable: everything consumed.
            if state is not None:
                consumed_upto = seq_add(
                    state.reassembly.rcv_nxt, -state.reassembly.readable
                )
                self._submit(
                    user_recv_event(flow_id, consumed_upto, self.now_s)
                )
            self.counters.add("recv_calls")
        return data

    def close_flow(self, flow_id: int) -> None:
        record = self.flows.get(flow_id)
        if record is None or record.closed:
            return
        self._submit(
            TcpEvent(
                EventKind.USER_REQ, flow_id, close=True, timestamp=self.now_s
            )
        )
        self.counters.add("close_requests")

    def tcb_of(self, flow_id: int) -> Optional[Tcb]:
        """Debug/verification view of a flow's current TCB."""
        for fpc in self.fpcs:
            tcb = fpc.peek_tcb(flow_id)
            if tcb is not None:
                return tcb
        return self.memory_manager.peek_tcb(flow_id)

    def flow_state(self, flow_id: int) -> Optional[TcpState]:
        tcb = self.tcb_of(flow_id)
        return None if tcb is None else tcb.state

    # ------------------------------------------------------------- events
    def _submit(self, event: TcpEvent) -> None:
        if self.trace is not None:
            self.trace.emit(
                self.time_ps, "engine.sched", f"{self.trace_name}/events",
                "event", event.flow_id, _event_detail(event),
            )
        if self._event_backlog or not self.scheduler.submit(event):
            self._event_backlog.append(event)

    def _drain_backlog(self) -> None:
        while self._event_backlog:
            if not self.scheduler.submit(self._event_backlog[0]):
                break
            self._event_backlog.popleft()

    # ---------------------------------------------------------------- tick
    def busy(self) -> bool:
        # Hot path: called once per probe by the testbed loop; plain
        # loop with direct container truthiness beats any()/genexpr.
        if (
            self._event_backlog
            or self.scheduler.busy()
            or self.memory_manager.busy()
            or self.rx_parser.notifications
        ):
            return True
        for fpc in self.fpcs:
            if fpc._maybe_busy and (
                fpc.input._items
                or fpc._dispatch_queue
                or fpc._in_flight
                or fpc.out_results
                or fpc.out_evicted
            ):
                return True
        return False

    def next_wakeup_ps(self) -> Optional[float]:
        """Earliest future time this engine must run (timer deadline)."""
        deadline_s = self.timers.next_deadline()
        return None if deadline_s is None else deadline_s * 1e12

    # ------------------------------------------------------ batched advance
    def next_work_cycle(self) -> Optional[int]:
        """Earliest absolute cycle at which :meth:`tick` does real work.

        None means nothing bounded is scheduled at all (quiet forever,
        absent external input).  Only meaningful under the testbed's
        quiet-run contract: nothing external — wire sends from the
        peer, host API calls — happens before the returned cycle, which
        the caller proves by combining both engines' horizons with the
        pump's.  Anything the very next tick would consume (backlog,
        RX notifications, a busy scheduler or memory manager, any FPC
        queue) reports ``cycle + 1``; the remaining sources of future
        work are exactly the three the tick pokes every cycle — FPU
        pipeline retires, timer expiry, wire arrivals.
        """
        if (
            self._event_backlog
            or self.rx_parser.notifications
            or self.scheduler.busy()
            or self.memory_manager.busy()
        ):
            return self.cycle + 1
        best: Optional[int] = None
        for fpc in self.fpcs:
            if not fpc._maybe_busy:
                continue  # idle invariant: every container empty
            if (
                fpc.input._items
                or fpc._dispatch_queue
                or fpc.out_results
                or fpc.out_evicted
            ):
                return self.cycle + 1
            retire = fpc.pipe.next_retire_cycle()
            if retire is not None:
                # FPC counters lag the engine's after idle jumps (jumps
                # move the testbed cycle without ticking); only the
                # delta to the FPC's own cycle is meaningful.
                c = self.cycle + max(1, retire - fpc.cycle)
                if best is None or c < best:
                    best = c
        hint_s = self.timers.earliest_hint
        if hint_s != math.inf:
            c = self._timer_guard_cycle(hint_s)
            if best is None or c < best:
                best = c
        if self.port is not None:
            arrival = self.port.next_arrival_ps()
            if arrival is not None:
                c = self._arrival_cycle(arrival)
                if best is None or c < best:
                    best = c
        return best

    def _timer_guard_cycle(self, hint_s: float) -> int:
        """First cycle whose tick passes the timer-expiry guard.

        Guarded search around the analytic guess: the result must
        satisfy ``_expire_timers``'s own float comparison exactly, so a
        batched run fires the timer on the identical cycle the
        per-cycle loop does — an analytic ceil alone can be off by one
        at float boundaries.
        """
        floor_k = self.cycle + 1
        k = int(hint_s * 1e12 / ENGINE_PERIOD_PS)
        if k < floor_k:
            k = floor_k
        while hint_s > (k * ENGINE_PERIOD_PS) / 1e12:
            k += 1
        while k > floor_k and hint_s <= ((k - 1) * ENGINE_PERIOD_PS) / 1e12:
            k -= 1
        return k

    def _arrival_cycle(self, arrival_ps: float) -> int:
        """First cycle whose wire poll delivers ``arrival_ps`` (guarded)."""
        floor_k = self.cycle + 1
        k = int(arrival_ps // ENGINE_PERIOD_PS)
        if k < floor_k:
            k = floor_k
        while k * ENGINE_PERIOD_PS < arrival_ps:
            k += 1
        while k > floor_k and (k - 1) * ENGINE_PERIOD_PS >= arrival_ps:
            k -= 1
        return k

    def advance_cycles(self, n: int) -> None:
        """Advance ``n`` guaranteed-quiet cycles in one call.

        Mirrors exactly what ``n`` no-op ticks do to the counters: the
        scheduler's and every FPC's cycle advances on every tick
        whether or not they work, while the memory manager's advances
        only inside its own busy tick — which a quiet window excludes.
        The caller proves quietness via :meth:`next_work_cycle` first.
        """
        self.cycle += n
        self.scheduler.cycle += n
        for fpc in self.fpcs:
            fpc.cycle += n

    def tick(self) -> None:
        # Hot path: every guard below is the callee's own first check
        # inlined (same expressions, so same float compares), saving a
        # call per quiet subsystem per cycle.
        cycle = self.cycle + 1
        self.cycle = cycle
        if self.timers.earliest_hint <= cycle * ENGINE_PERIOD_PS / 1e12:
            self._expire_timers()
        if self._event_backlog:
            self._drain_backlog()
        port = self.port
        if port is not None:
            in_flight = port._inbound._in_flight
            if in_flight and in_flight[0][0] <= cycle * ENGINE_PERIOD_PS:
                self._poll_wire()
        if self.scheduler.busy():
            self.scheduler.tick()
        else:
            self.scheduler.cycle += 1  # keep cycle-based retries aligned
        memory_manager = self.memory_manager
        if memory_manager.input._items or memory_manager.swap_in_requests:
            memory_manager.tick()
        for fpc in self.fpcs:
            # Idle FPCs would only bump their cycle counter; do exactly
            # that without the full tick (hot-loop fast path).
            if fpc._maybe_busy:
                if (
                    fpc.input._items
                    or fpc._dispatch_queue
                    or fpc._in_flight
                    or fpc.out_results
                    or fpc.out_evicted
                ):
                    fpc.tick()
                    if fpc.out_results or fpc.out_evicted:
                        self._drain_one_fpc(fpc)
                else:
                    fpc._maybe_busy = False
                    fpc.cycle += 1
            else:
                fpc.cycle += 1
        if self.rx_parser.notifications:
            self._drain_rx_notifications()

    def _drain_one_fpc(self, fpc) -> None:
        for result in fpc.drain_results():
            if self.trace is not None:
                self._trace_fpu(fpc, result)
            self._apply_result(result)
        if fpc.out_evicted:
            # Evicted TCBs are collected by the scheduler next tick;
            # nothing to do here (they stay queued on the FPC).
            pass

    def _trace_fpu(self, fpc, result: ProcessResult) -> None:
        """One FPU pass (and any state transition) onto the trace bus."""
        if self.trace is None:
            return
        tcb = result.tcb
        component = f"{self.trace_name}/fpc{fpc.fpc_id}"
        directives = ", ".join(
            f"seq={d.seq}+{d.length}{' RTX' if d.retransmission else ''}"
            for d in result.directives
        )
        self.trace.emit(
            self.time_ps, "engine.fpc", component, "fpu", tcb.flow_id,
            f"una={tcb.snd_una} nxt={tcb.snd_nxt} cwnd={tcb.cwnd}"
            + (f" -> [{directives}]" if directives else ""),
            dur_ps=fpc.fpu.latency_cycles * ENGINE_PERIOD_PS,
        )
        previous = self._trace_last_state.get(tcb.flow_id)
        if previous is not tcb.state:
            self._trace_last_state[tcb.flow_id] = tcb.state
            if previous is not None:
                self.trace.emit(
                    self.time_ps, "engine.fpc", component, "state",
                    tcb.flow_id, f"{previous.value} -> {tcb.state.value}",
                )

    def _expire_timers(self) -> None:
        if self.timers.earliest_hint > self.now_s:
            return
        for flow_id in self.timers.expire(self.now_s):
            if flow_id in self.flows:
                self._submit(timeout_event(flow_id, self.now_s))
                self.counters.add("timeouts_fired")

    def _poll_wire(self) -> None:
        if self.port is None:
            return
        for frame in self.port.poll(self.time_ps):
            self._handle_frame(frame)

    def _handle_frame(self, frame: EthernetFrame) -> None:
        if frame.ethertype == ETHERTYPE_ARP:
            reply, released = self.arp.handle(frame.payload)
            if reply is not None:
                self.port.send(reply, self.time_ps)
            for dst_mac, packet in released:
                self._send_ipv4(packet, dst_mac)
            return
        payload = frame.payload
        if isinstance(payload, IcmpMessage):
            reply = self.icmp.handle(payload)
            if reply is not None:
                self._transmit_ip(reply, reply.dst_ip)
            return
        if isinstance(payload, (bytes, bytearray)):
            try:
                payload = TcpSegment.from_bytes(bytes(payload))
            except ValueError:
                # Corrupted or malformed on the wire: checksum rejected.
                self.counters.add("packets_corrupt_dropped")
                return
        self.counters.add("packets_received")
        event = self.rx_parser.parse(payload)
        if event is not None:
            if self.trace is not None:
                self.trace.emit(
                    self.time_ps, "engine.rx", f"{self.trace_name}/rx",
                    "rx", event.flow_id,
                    f"{payload.flag_names()} seq={payload.seq} "
                    f"ack={payload.ack} len={len(payload.payload)}",
                )
            self._submit(event)
        elif not payload.rst:
            # No flow owns this segment and no listener wants it:
            # answer with RST (RFC 793) so the sender learns immediately
            # (connection refused) instead of retrying into silence.
            self._send_rst_for(payload)

    def _send_rst_for(self, segment: TcpSegment) -> None:
        if segment.has_ack:
            rst = TcpSegment(
                src_ip=segment.dst_ip, dst_ip=segment.src_ip,
                src_port=segment.dst_port, dst_port=segment.src_port,
                seq=segment.ack, flags=FLAG_RST, window=0,
            )
        else:
            rst = TcpSegment(
                src_ip=segment.dst_ip, dst_ip=segment.src_ip,
                src_port=segment.dst_port, dst_port=segment.src_port,
                seq=0,
                ack=seq_add(segment.seq, segment.seq_space),
                flags=FLAG_RST | FLAG_ACK,
                window=0,
            )
        self.counters.add("rsts_sent")
        self._transmit_ip(rst, rst.dst_ip)

    def _apply_result(self, result: ProcessResult) -> None:
        tcb = result.tcb
        if result.timer is TimerOp.ARM:
            self.timers.arm(tcb.flow_id, result.timer_deadline)
        elif result.timer is TimerOp.CANCEL:
            self.timers.cancel(tcb.flow_id)

        # Directives first: a CLOSED notification tears the flow down,
        # and the final ACK must still make it out.
        mss = tcb.mss or self.config.mss
        sack_blocks = None
        rx_state = self.rx_parser.rx_states.get(tcb.flow_id)
        if rx_state is not None and rx_state.reassembly.out_of_order_chunks:
            # RFC 2018: advertise our out-of-order holdings so the peer
            # retransmits only the holes.
            sack_blocks = rx_state.reassembly.chunk_boundaries()[:3]
        for directive in result.directives:
            for segment in self.packet_gen.generate(directive, mss, sack_blocks):
                self._transmit_segment(segment)
                self.counters.add("packets_sent")
                if directive.retransmission:
                    self.counters.add("retransmissions")

        for note in result.notifications:
            self._apply_notification(note.kind, note.flow_id, note.value)

    def _post_message(self, kind: str, flow_id: int, value: int = 0) -> None:
        """Queue a message on the flow's thread (receive-side scaling)."""
        thread_id = self._flow_thread.get(flow_id, 0)
        queue = self.host_messages.get(thread_id)
        if queue is None:
            queue = self.host_messages[0]
        queue.append(EngineMessage(kind, flow_id, value))
        self.msg_epoch += 1
        if self.trace is not None:
            self.trace.emit(
                self.time_ps, "host", f"{self.trace_name}/hostq", "msg",
                flow_id, f"{kind} thread={thread_id} value={value}",
            )

    def _apply_notification(self, kind: NoteKind, flow_id: int, value: int) -> None:
        record = self.flows.get(flow_id)
        if kind is NoteKind.ACKED:
            if record is not None:
                record.stream.release(value)
            self._post_message("acked", flow_id, value)
        elif kind is NoteKind.CONNECTED:
            self._post_message("connected", flow_id)
        elif kind is NoteKind.ACCEPTED:
            if record is not None and record.listen_port is not None:
                # SO_REUSEPORT: distribute new flows evenly over the
                # registered threads' accept queues (§4.6).
                threads = self.registered_threads
                index = self._accept_rr.get(record.listen_port, 0)
                thread_id = threads[index % len(threads)]
                self._accept_rr[record.listen_port] = index + 1
                self._assign_flow_to_thread(flow_id, thread_id)
                self.listening[record.listen_port].setdefault(
                    thread_id, deque()
                ).append(flow_id)
            self._post_message("accepted", flow_id)
            self.counters.add("connections_accepted")
        elif kind is NoteKind.PEER_FIN:
            self._post_message("eof", flow_id, value)
        elif kind is NoteKind.CLOSED:
            self._post_message("closed", flow_id)
            self._teardown_flow(flow_id)
        elif kind is NoteKind.RESET:
            self._post_message("reset", flow_id)
            self._teardown_flow(flow_id)

    def _teardown_flow(self, flow_id: int) -> None:
        record = self.flows.get(flow_id)
        if record is None or record.closed:
            return
        record.closed = True
        self.timers.cancel(flow_id)
        self.scheduler.deregister_flow(flow_id)
        self.rx_parser.deregister_flow(record.key, flow_id)
        del self.flows[flow_id]
        self._flow_thread.pop(flow_id, None)
        self.counters.add("flows_closed")

    def _drain_rx_notifications(self) -> None:
        for note in self.rx_parser.drain_notifications():
            kind = "eof" if note.eof else "data"
            self._post_message(kind, note.flow_id, note.readable_pointer)

    # ------------------------------------------------------------ transmit
    def _transmit_segment(self, segment: TcpSegment) -> None:
        if self.trace is not None:
            flow_id = self.rx_parser.lookup(segment.flow_key)
            self.trace.emit(
                self.time_ps, "engine.tx", f"{self.trace_name}/tx", "tx",
                flow_id if flow_id is not None else -1,
                f"{segment.flag_names()} seq={segment.seq} "
                f"ack={segment.ack} len={len(segment.payload)}",
            )
        self._transmit_ip(segment, segment.dst_ip)

    def _transmit_ip(self, packet, dst_ip: int) -> None:
        if self.port is None:
            return
        dst_mac = self.arp.resolve(dst_ip)
        if dst_mac is None:
            request = self.arp.queue_until_resolved(dst_ip, packet, self.now_s)
            if request is not None:
                self.port.send(request, self.time_ps)
            return
        self._send_ipv4(packet, dst_mac)

    def _send_ipv4(self, packet, dst_mac: int) -> None:
        frame = EthernetFrame(
            src_mac=self.mac,
            dst_mac=dst_mac,
            ethertype=ETHERTYPE_IPV4,
            payload=packet,
        )
        self.port.send(frame, self.time_ps)

    # ---------------------------------------------------------- statistics
    def stats_report(self) -> Dict[str, object]:
        """Aggregate statistics from every module, for dashboards/demos."""
        return {
            "engine": self.counters.as_dict(),
            "scheduler": {
                "events_submitted": self.scheduler.events_submitted,
                "events_coalesced": self.scheduler.events_coalesced,
                "events_routed": self.scheduler.events_routed,
                "evictions": self.scheduler.evictions,
                "swap_ins": self.scheduler.swap_ins,
                "pending_retries": self.scheduler.pending_retries,
                "congestion_migrations": self.scheduler.congestion_migrations,
                "migrations_declined_hot": self.scheduler.migrations_declined_hot,
            },
            "fpcs": {
                fpc.name: {
                    "flows": fpc.flow_count,
                    "events_accepted": fpc.events_accepted,
                    "tcbs_processed": fpc.tcbs_processed,
                }
                for fpc in self.fpcs
            },
            "memory_manager": {
                "flows": self.memory_manager.flow_count,
                "events_handled": self.memory_manager.events_handled,
                "cache_hits": self.memory_manager.cache_hits,
                "cache_misses": self.memory_manager.cache_misses,
                "dram_bytes": self.dram.bytes_transferred,
            },
            "tcb_cache": {
                "geometry": self.memory_manager.cache.geometry.render(),
                **self.memory_manager.cache.stats(),
            },
            "flow_table": self.rx_parser.flow_table.metrics(),
            "flow_heat": (
                self.flow_heat.stats() if self.flow_heat is not None else {}
            ),
            "rx_parser": {
                "packets_parsed": self.rx_parser.packets_parsed,
                "out_of_order": self.rx_parser.out_of_order_packets,
                "dup_acks": self.rx_parser.dup_acks_detected,
                "dropped_no_flow": self.rx_parser.packets_dropped_no_flow,
            },
            "packet_generator": {
                "packets": self.packet_gen.packets_generated,
                "bytes": self.packet_gen.bytes_generated,
                "mss_splits": self.packet_gen.splits,
            },
            "arp": {
                "requests_sent": self.arp.requests_sent,
                "replies_sent": self.arp.replies_sent,
            },
        }

    # ------------------------------------------------------------ host I/O
    def drain_host_messages(self, thread_id: int = 0) -> List[EngineMessage]:
        """Drain one thread's completion messages (per-thread queues, §4.6)."""
        queue = self.host_messages.get(thread_id)
        if queue is None:
            return []
        messages = list(queue)
        queue.clear()
        if messages:
            self.msg_epoch += 1
        return messages


def _event_detail(event: TcpEvent) -> str:
    """The human-readable payload of an ``event`` trace record."""
    parts = []
    if event.req is not None:
        parts.append(f"req={event.req}")
    if event.ack is not None:
        parts.append(f"ack={event.ack}")
    if event.rcv_nxt is not None:
        parts.append(f"rcv_nxt={event.rcv_nxt}")
    if event.dup_incr:
        parts.append("dupack")
    for flag in ("syn", "fin", "rst", "timeout", "connect", "close"):
        if getattr(event, flag):
            parts.append(flag)
    return f"{event.kind.value} {' '.join(parts)}".strip()
