"""The Flow Processing Unit: stateless, fully pipelined TCP processing.

The FPU receives a *constructed* TCB from the TCB manager, processes all
accumulated events in one pass — deciding which data to transfer
(congestion and flow control), ACKing received data, advertising the
receive window, retransmitting, and sending probe packets (§4.2.2) — and
writes the updated TCB back.  It is stateless: everything it needs is in
the TCB, so it can be pipelined with any depth (§4.5) and users program
TCP algorithms by changing only this module (the HLS placeholder in
hardware; the :class:`~repro.tcp.congestion.base.CongestionControl`
subclass here).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..tcp.congestion import CongestionControl, get_algorithm
from ..tcp.options import TcpOptions, WINDOW_SCALE
from ..tcp.segment import FLAG_ACK, FLAG_FIN, FLAG_PSH, FLAG_SYN
from ..tcp.seq import seq_add, seq_ge, seq_gt, seq_le, seq_lt, seq_sub
from ..tcp.state_machine import (
    DATA_STATES,
    TcpState,
    on_ack_of_fin,
    on_ack_of_syn,
    on_close,
    on_fin_received,
    on_rst,
    on_syn_ack_received,
    on_syn_received,
)
from ..tcp.tcb import Tcb
from ..tcp.timers import backoff_rto, update_rtt


@dataclass
class TxDirective:
    """FPC's request to the packet generator (§4.1.2 ❶).

    ``length`` bytes starting at ``seq`` are fetched from the flow's TCP
    data buffer and appended after the generated header; the generator
    splits requests larger than the MSS into multiple segments.
    """

    flow_id: int
    seq: int
    length: int
    flags: int
    ack: int
    window: int
    retransmission: bool = False
    options: Optional[TcpOptions] = None

    @property
    def is_pure_ack(self) -> bool:
        return self.length == 0 and self.flags == FLAG_ACK


class NoteKind(enum.Enum):
    """Commands FtEngine sends up to the software (§4.1.1)."""

    ACKED = "acked"  # send-buffer space freed up to this pointer
    CONNECTED = "connected"  # active open completed
    ACCEPTED = "accepted"  # passive open completed
    PEER_FIN = "peer_fin"  # EOF: peer closed its direction
    CLOSED = "closed"  # connection fully closed
    RESET = "reset"  # connection aborted by RST


@dataclass
class HostNotification:
    kind: NoteKind
    flow_id: int
    value: int = 0


class TimerOp(enum.Enum):
    NONE = "none"
    ARM = "arm"
    CANCEL = "cancel"


@dataclass
class ProcessResult:
    """Everything one FPU pass produces."""

    tcb: Tcb
    directives: List[TxDirective] = field(default_factory=list)
    notifications: List[HostNotification] = field(default_factory=list)
    timer: TimerOp = TimerOp.NONE
    timer_deadline: float = 0.0


#: Give up on a connection after this many consecutive RTO backoffs
#: (Linux's tcp_retries2 analog); the flow is aborted with a RESET.
MAX_RTO_BACKOFF = 10


class Fpu:
    """Processes constructed TCBs; pure function of (TCB, dupACK count)."""

    #: Writer id the race sanitizer (repro.check) records for FPU
    #: writebacks: the FPU is the *only* legal writer of the TCB table
    #: in the dual-memory scheme (§4.2.3), besides the dedicated
    #: swap-in port.
    writer_id = "fpu"

    def __init__(self, algorithm: str = "newreno") -> None:
        self.cc: CongestionControl = get_algorithm(algorithm)
        self.passes = 0
        self.segments_requested = 0
        self.retransmissions = 0

    @property
    def latency_cycles(self) -> int:
        """Pipeline depth of the synthesized FPU for this algorithm."""
        return self.cc.fpu_latency_cycles

    # ------------------------------------------------------------ helpers
    def _arm(self, result: ProcessResult, tcb: Tcb, now_s: float) -> None:
        result.timer = TimerOp.ARM
        result.timer_deadline = now_s + tcb.rto
        tcb.rto_deadline = result.timer_deadline

    def _cancel(self, result: ProcessResult, tcb: Tcb) -> None:
        result.timer = TimerOp.CANCEL
        tcb.rto_deadline = None

    def _emit(
        self,
        result: ProcessResult,
        tcb: Tcb,
        seq: int,
        length: int,
        flags: int,
        retransmission: bool = False,
        options: Optional[TcpOptions] = None,
    ) -> None:
        window = tcb.rcv_wnd
        result.directives.append(
            TxDirective(
                flow_id=tcb.flow_id,
                seq=seq,
                length=length,
                flags=flags,
                ack=tcb.rcv_nxt if flags & FLAG_ACK else 0,
                window=window,
                retransmission=retransmission,
                options=options,
            )
        )
        if flags & FLAG_ACK:
            tcb.last_ack_sent = tcb.rcv_nxt
            tcb.last_wnd_sent = window
            tcb.ack_pending = False
        self.segments_requested += 1
        if retransmission:
            self.retransmissions += 1

    # ---------------------------------------------------------- main pass
    def process(self, tcb: Tcb, dup_count: int, now_s: float) -> ProcessResult:
        """One stateless pass over the accumulated events in ``tcb``."""
        self.passes += 1
        result = ProcessResult(tcb=tcb)
        tcb.last_active = max(tcb.last_active, now_s)
        if tcb.snd_max is None:
            tcb.snd_max = tcb.snd_nxt

        if tcb.rst_received:
            self._handle_rst(result, tcb)
            return result

        self._handle_connection_setup(result, tcb, now_s)
        self._handle_incoming_ack(result, tcb, now_s)
        if dup_count:
            self._handle_dupacks(result, tcb, dup_count, now_s)
        if tcb.timeout_pending:
            self._handle_timeout(result, tcb, now_s)
        self._transmit_new_data(result, tcb, now_s)
        self._handle_close(result, tcb, now_s)
        self._handle_peer_fin(result, tcb)
        self._generate_ack_if_needed(result, tcb)
        if tcb.state is TcpState.TIME_WAIT:
            # 2*MSL modelled as a couple of RTOs; expiry closes the flow.
            self._arm(result, tcb, now_s)
        # High-water mark: go-back-N may roll snd_nxt back, but data up
        # to snd_max is on the wire and may still be cumulatively ACKed.
        if seq_gt(tcb.snd_nxt, tcb.snd_max):
            tcb.snd_max = tcb.snd_nxt
        return result

    # ------------------------------------------------------------- pieces
    def _handle_rst(self, result: ProcessResult, tcb: Tcb) -> None:
        tcb.state = on_rst(tcb.state)
        tcb.rst_received = False
        result.notifications.append(HostNotification(NoteKind.RESET, tcb.flow_id))
        self._cancel(result, tcb)

    def _handle_connection_setup(
        self, result: ProcessResult, tcb: Tcb, now_s: float
    ) -> None:
        if tcb.cc.pop("_connect_req", False) and tcb.state is TcpState.CLOSED:
            # Active open: emit SYN carrying our MSS and start the CC.
            tcb.state = TcpState.SYN_SENT
            tcb.snd_una = tcb.iss
            tcb.snd_nxt = tcb.iss
            self.cc.on_init(tcb, now_s)
            self._emit(
                result,
                tcb,
                seq=tcb.snd_nxt,
                length=0,
                flags=FLAG_SYN,
                options=TcpOptions(mss=tcb.mss, window_scale=WINDOW_SCALE),
            )
            tcb.snd_nxt = seq_add(tcb.snd_nxt, 1)
            tcb.rtt_seq = tcb.snd_nxt  # time the SYN for the first sample
            tcb.rtt_sent_at = now_s
            self._arm(result, tcb, now_s)
            return

        if not tcb.syn_received:
            return
        tcb.syn_received = False
        if tcb.state in (TcpState.LISTEN, TcpState.CLOSED):
            # Passive open: the RX parser created this flow from a SYN.
            tcb.state = on_syn_received(TcpState.LISTEN)
            tcb.rcv_nxt = seq_add(tcb.irs, 1)
            tcb.rcv_user = tcb.rcv_nxt
            tcb.snd_una = tcb.iss
            tcb.snd_nxt = tcb.iss
            self.cc.on_init(tcb, now_s)
            self._emit(
                result,
                tcb,
                seq=tcb.snd_nxt,
                length=0,
                flags=FLAG_SYN | FLAG_ACK,
                options=TcpOptions(mss=tcb.mss, window_scale=WINDOW_SCALE),
            )
            tcb.snd_nxt = seq_add(tcb.snd_nxt, 1)
            tcb.rtt_seq = tcb.snd_nxt  # time the SYN-ACK
            tcb.rtt_sent_at = now_s
            self._arm(result, tcb, now_s)
        elif tcb.state is TcpState.SYN_SENT:
            # SYN-ACK (or simultaneous open SYN) arrived.
            tcb.rcv_nxt = seq_add(tcb.irs, 1)
            tcb.rcv_user = tcb.rcv_nxt
            tcb.ack_pending = True
        else:
            # Duplicate SYN/SYN-ACK in a synchronized state: our ACK was
            # lost; answer with a challenge ACK (RFC 793) so the peer's
            # handshake completes.
            tcb.ack_pending = True

    def _handle_incoming_ack(
        self, result: ProcessResult, tcb: Tcb, now_s: float
    ) -> None:
        latest_ack = tcb.cc.pop("_latest_ack", None)
        if latest_ack is None:
            return
        sent_high = tcb.snd_max if tcb.snd_max is not None else tcb.snd_nxt
        if seq_gt(latest_ack, sent_high):
            # ACK for data never sent: ignore (a real stack would
            # challenge-ACK; the simulated peer never does this).
            return
        acked = seq_sub(latest_ack, tcb.snd_una)
        if acked <= 0:
            return
        old_una = tcb.snd_una
        tcb.snd_una = latest_ack
        if seq_gt(tcb.snd_una, tcb.snd_nxt):
            # The ACK covers data sent before a go-back-N rollback:
            # nothing in that range needs resending.
            tcb.snd_nxt = tcb.snd_una

        # SYN occupies one sequence number: its ACK completes setup.
        if tcb.state is TcpState.SYN_SENT and seq_ge(
            tcb.snd_una, seq_add(tcb.iss, 1)
        ):
            tcb.state = on_syn_ack_received(tcb.state)
            result.notifications.append(
                HostNotification(NoteKind.CONNECTED, tcb.flow_id)
            )
            acked -= 1
        elif tcb.state is TcpState.SYN_RECEIVED and seq_ge(
            tcb.snd_una, seq_add(tcb.iss, 1)
        ):
            tcb.state = on_ack_of_syn(tcb.state)
            result.notifications.append(
                HostNotification(NoteKind.ACCEPTED, tcb.flow_id)
            )
            acked -= 1

        # RTT sample: the timed sequence got covered.
        rtt_sample: Optional[float] = None
        if tcb.rtt_seq is not None and seq_ge(tcb.snd_una, tcb.rtt_seq):
            rtt_sample = max(0.0, now_s - tcb.rtt_sent_at)
            update_rtt(tcb, rtt_sample)
            self.cc.on_rtt_sample(tcb, rtt_sample, now_s)
            tcb.rtt_seq = None

        # FIN ACKed?  (The FIN consumed the last sequence number.)
        fin_seq = tcb.cc.get("_fin_seq")
        if (
            tcb.fin_sent
            and not tcb.fin_acked
            and fin_seq is not None
            and seq_ge(tcb.snd_una, seq_add(fin_seq, 1))
        ):
            tcb.fin_acked = True
            acked -= 1
            tcb.state = on_ack_of_fin(tcb.state)
            if tcb.state is TcpState.CLOSED:
                result.notifications.append(
                    HostNotification(NoteKind.CLOSED, tcb.flow_id)
                )
                self._cancel(result, tcb)

        if acked > 0:
            retransmit_first = self.cc.on_ack(tcb, acked, now_s, rtt_sample)
            if retransmit_first:
                self._retransmit_missing(result, tcb)
            result.notifications.append(
                HostNotification(NoteKind.ACKED, tcb.flow_id, value=tcb.snd_una)
            )

        if not tcb.in_recovery:
            tcb.cc.pop("_sack_rtx_high", None)
        # ACKed data invalidates stale SACK blocks below snd_una.
        tcb.sacked = [
            (s0, e0) for s0, e0 in tcb.sacked if seq_gt(e0, tcb.snd_una)
        ]

        # Timer: everything acknowledged -> cancel; otherwise restart.
        if tcb.bytes_in_flight == 0 and not (tcb.fin_sent and not tcb.fin_acked):
            if tcb.state is not TcpState.CLOSED:
                self._cancel(result, tcb)
        else:
            self._arm(result, tcb, now_s)

    def _handle_dupacks(
        self, result: ProcessResult, tcb: Tcb, dup_count: int, now_s: float
    ) -> None:
        if tcb.bytes_in_flight == 0:
            return
        if self.cc.on_dupacks(tcb, dup_count, now_s):
            self._retransmit_missing(result, tcb)
            self._arm(result, tcb, now_s)
        elif tcb.in_recovery and tcb.sacked:
            # Additional dupACKs revealed more holes: keep filling them.
            self._retransmit_missing(result, tcb, limit=1)

    def _sack_holes(self, tcb: Tcb) -> List[Tuple[int, int]]:
        """Missing ranges between snd_una and the highest SACKed byte.

        RFC 2018: data below a SACKed block that is not itself SACKed is
        (probably) lost; everything above the highest block is merely
        not-yet-acknowledged and must not be retransmitted early.
        """
        if not tcb.sacked:
            return []
        blocks = [
            (start, end)
            for start, end in tcb.sacked
            if seq_gt(end, tcb.snd_una) and seq_le(end, tcb.snd_nxt)
        ]
        blocks.sort(key=lambda block: seq_sub(block[0], tcb.snd_una))
        holes: List[Tuple[int, int]] = []
        cursor = tcb.snd_una
        for start, end in blocks:
            if seq_gt(start, cursor):
                holes.append((cursor, start))
            if seq_gt(end, cursor):
                cursor = end
        return holes

    def _retransmit_missing(self, result: ProcessResult, tcb: Tcb, limit: int = 2) -> None:
        """SACK-aware fast retransmit: resend only the known holes.

        Falls back to the first-unacked segment when no SACK information
        is available.  ``_sack_rtx_high`` tracks what this recovery
        episode already resent so repeated dupACK passes walk forward
        through the holes instead of re-sending the first one.
        """
        holes = self._sack_holes(tcb)
        if not holes:
            self._retransmit_one(result, tcb)
            return
        high = tcb.cc.get("_sack_rtx_high", tcb.snd_una)
        if seq_lt(high, tcb.snd_una):
            high = tcb.snd_una
        sent = 0
        for start, end in holes:
            cursor = start if seq_ge(start, high) else high
            while sent < limit and seq_lt(cursor, end):
                length = min(tcb.mss, seq_sub(end, cursor))
                self._emit(
                    result, tcb, seq=cursor, length=length,
                    flags=FLAG_ACK | FLAG_PSH, retransmission=True,
                )
                cursor = seq_add(cursor, length)
                tcb.cc["_sack_rtx_high"] = cursor
                sent += 1
            if sent >= limit:
                break
        # sent == 0 means every known hole was already resent this
        # episode: do nothing — if a retransmission itself was lost, the
        # RTO repairs it (retransmitting again on every dupACK would
        # just burst duplicates into a congested path).

    def _retransmit_one(self, result: ProcessResult, tcb: Tcb) -> None:
        """Fast retransmit: resend the first unacknowledged segment."""
        length = min(tcb.mss, max(1, tcb.bytes_in_flight))
        fin_seq = tcb.cc.get("_fin_seq")
        if fin_seq is not None and tcb.snd_una == fin_seq:
            # Only the FIN is outstanding.
            self._emit(
                result, tcb, seq=fin_seq, length=0,
                flags=FLAG_FIN | FLAG_ACK, retransmission=True,
            )
            return
        if fin_seq is not None:
            length = min(length, max(1, seq_sub(fin_seq, tcb.snd_una)))
        self._emit(
            result,
            tcb,
            seq=tcb.snd_una,
            length=length,
            flags=FLAG_ACK | FLAG_PSH,
            retransmission=True,
        )

    def _handle_timeout(
        self, result: ProcessResult, tcb: Tcb, now_s: float
    ) -> None:
        tcb.timeout_pending = False
        if tcb.rto_backoff >= MAX_RTO_BACKOFF:
            # The peer is unreachable: abort rather than retry forever.
            tcb.state = on_rst(tcb.state)
            result.notifications.append(
                HostNotification(NoteKind.RESET, tcb.flow_id)
            )
            self._cancel(result, tcb)
            return
        if tcb.state is TcpState.TIME_WAIT:
            tcb.state = TcpState.CLOSED
            result.notifications.append(
                HostNotification(NoteKind.CLOSED, tcb.flow_id)
            )
            self._cancel(result, tcb)
            return
        if tcb.state is TcpState.SYN_SENT:
            # Retransmit the SYN.
            backoff_rto(tcb)
            self._emit(
                result, tcb, seq=tcb.iss, length=0, flags=FLAG_SYN,
                retransmission=True, options=TcpOptions(mss=tcb.mss, window_scale=WINDOW_SCALE),
            )
            self._arm(result, tcb, now_s)
            return
        if tcb.state is TcpState.SYN_RECEIVED:
            backoff_rto(tcb)
            self._emit(
                result, tcb, seq=tcb.iss, length=0,
                flags=FLAG_SYN | FLAG_ACK, retransmission=True,
                options=TcpOptions(mss=tcb.mss, window_scale=WINDOW_SCALE),
            )
            self._arm(result, tcb, now_s)
            return
        if tcb.bytes_in_flight > 0:
            # Go-back-N: collapse snd_nxt and let the send path resend
            # under the post-timeout one-segment window.
            self.cc.on_timeout(tcb, now_s)
            backoff_rto(tcb)
            fin_seq = tcb.cc.get("_fin_seq")
            if tcb.fin_sent and fin_seq is not None and seq_ge(fin_seq, tcb.snd_una):
                tcb.fin_sent = False  # the FIN must be resent too
            tcb.snd_nxt = tcb.snd_una
            tcb.rtt_seq = None  # Karn's rule: never time retransmissions
            tcb.cc["_retransmitting"] = True
            tcb.cc.pop("_sack_rtx_high", None)
            tcb.sacked = []  # go-back-N resends everything anyway
            self._arm(result, tcb, now_s)
        elif tcb.snd_wnd == 0 and tcb.bytes_unsent > 0:
            # Persist timer fired: send a 1-byte zero-window probe.
            self._emit(
                result,
                tcb,
                seq=tcb.snd_nxt,
                length=1,
                flags=FLAG_ACK | FLAG_PSH,
                retransmission=False,
            )
            tcb.snd_nxt = seq_add(tcb.snd_nxt, 1)
            backoff_rto(tcb)
            self._arm(result, tcb, now_s)

    def _transmit_new_data(
        self, result: ProcessResult, tcb: Tcb, now_s: float
    ) -> None:
        if tcb.state not in DATA_STATES:
            return
        retransmitting = tcb.cc.pop("_retransmitting", False)
        unsent = tcb.bytes_unsent
        if unsent <= 0:
            return
        window = tcb.effective_window
        sendable = min(unsent, window)
        if sendable <= 0:
            if tcb.snd_wnd == 0 and tcb.bytes_in_flight == 0:
                # Blocked on a zero window: arm the persist timer.
                self._arm(result, tcb, now_s)
            return
        self._emit(
            result,
            tcb,
            seq=tcb.snd_nxt,
            length=sendable,
            flags=FLAG_ACK | FLAG_PSH,
            retransmission=retransmitting,
        )
        if tcb.rtt_seq is None and not retransmitting:
            tcb.rtt_seq = seq_add(tcb.snd_nxt, sendable)
            tcb.rtt_sent_at = now_s
        tcb.snd_nxt = seq_add(tcb.snd_nxt, sendable)
        self._arm(result, tcb, now_s)

    def _handle_close(self, result: ProcessResult, tcb: Tcb, now_s: float) -> None:
        if (
            not tcb.close_requested
            or tcb.fin_sent
            or tcb.bytes_unsent > 0
            or tcb.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)
        ):
            return
        self._emit(result, tcb, seq=tcb.snd_nxt, length=0, flags=FLAG_FIN | FLAG_ACK)
        tcb.cc["_fin_seq"] = tcb.snd_nxt
        tcb.snd_nxt = seq_add(tcb.snd_nxt, 1)
        tcb.fin_sent = True
        tcb.state = on_close(tcb.state)
        self._arm(result, tcb, now_s)

    def _handle_peer_fin(self, result: ProcessResult, tcb: Tcb) -> None:
        if not tcb.fin_received:
            return
        tcb.fin_received = False
        tcb.state = on_fin_received(tcb.state)
        tcb.ack_pending = True
        result.notifications.append(
            HostNotification(NoteKind.PEER_FIN, tcb.flow_id, value=tcb.rcv_nxt)
        )
        if tcb.state is TcpState.TIME_WAIT:
            # 2*MSL modelled as a few RTOs; the timeout path closes us.
            result.timer = TimerOp.ARM
            result.timer_deadline = tcb.last_active + 2 * tcb.rto
            tcb.rto_deadline = result.timer_deadline

    def _generate_ack_if_needed(self, result: ProcessResult, tcb: Tcb) -> None:
        if tcb.state in (TcpState.CLOSED, TcpState.LISTEN, TcpState.SYN_SENT):
            if not tcb.ack_pending or tcb.state is not TcpState.SYN_SENT:
                return
        window_opened = (
            0 <= tcb.last_wnd_sent < 2 * tcb.mss
            and tcb.rcv_wnd >= tcb.last_wnd_sent + 2 * tcb.mss
        )
        if (
            tcb.ack_pending
            or seq_gt(tcb.rcv_nxt, tcb.last_ack_sent)
            or window_opened
        ):
            self._emit(result, tcb, seq=tcb.snd_nxt, length=0, flags=FLAG_ACK)
