"""The RX parser: FtEngine's receive data path (§4.1.2).

For each received packet the parser:

1. retrieves the flow ID from the cuckoo hash table keyed by the
   4-tuple (source/destination IP and port);
2. DMAs the payload into the TCP data buffer if it fits the receive
   window — in order or not — and drops it otherwise;
3. logically reassembles by tracking out-of-sequence chunk boundaries,
   notifying the application only when data is contiguous;
4. emits a control-path event carrying the packet's transmission state
   (SEQ and ACK), window, and flags for the scheduler to route.

Duplicate-ACK detection also lives here: the parser remembers the last
cumulative ACK per flow and marks repeats, producing the ``dup_incr``
that the event handler counts in a single cycle (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..tcp.cuckoo import CuckooHashTable
from ..tcp.reassembly import ReassemblyBuffer
from ..tcp.segment import FlowKey, TcpSegment
from ..tcp.seq import seq_add, seq_ge, seq_gt
from ..tcp.tcb import DEFAULT_BUFFER_BYTES
from .events import EventKind, TcpEvent


@dataclass
class RxFlowState:
    """Parser-side per-flow receive state (the out-of-sequence store)."""

    reassembly: ReassemblyBuffer
    last_ack_seen: Optional[int] = None
    last_wnd_seen: Optional[int] = None
    #: Sequence number of a FIN seen out of order, pending reassembly.
    fin_seq: Optional[int] = None
    in_order_streak: int = 0
    #: Peer's negotiated window-scale shift (RFC 7323), from its SYN.
    peer_wscale: int = 0


@dataclass
class RxNotification:
    """'Received data pointer' command to the software (§4.1.1)."""

    flow_id: int
    readable_pointer: int  # rcv_nxt after reassembly
    eof: bool = False


class RxParser:
    """Parses segments, reassembles payload, and emits control events."""

    def __init__(
        self,
        now_fn: Callable[[], float],
        passive_open: Optional[Callable[[TcpSegment], Optional[int]]] = None,
        recv_buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ) -> None:
        self.flow_table: CuckooHashTable[FlowKey, int] = CuckooHashTable()
        self.rx_states: Dict[int, RxFlowState] = {}
        self.now_fn = now_fn
        self.passive_open = passive_open
        self.recv_buffer_bytes = recv_buffer_bytes

        self.packets_parsed = 0
        self.packets_dropped_no_flow = 0
        self.dup_acks_detected = 0
        self.out_of_order_packets = 0
        self.notifications: List[RxNotification] = []

    # -------------------------------------------------------- flow set-up
    def register_flow(self, key: FlowKey, flow_id: int, rcv_nxt: int) -> None:
        """Install a flow in the lookup table and create its RX state."""
        self.flow_table.insert(key, flow_id)
        self.rx_states[flow_id] = RxFlowState(
            ReassemblyBuffer(rcv_nxt, self.recv_buffer_bytes)
        )

    def set_initial_rcv_nxt(self, flow_id: int, rcv_nxt: int) -> None:
        """Re-anchor the reassembly origin once the peer's ISN is known."""
        state = self.rx_states[flow_id]
        state.reassembly = ReassemblyBuffer(rcv_nxt, self.recv_buffer_bytes)

    def deregister_flow(self, key: FlowKey, flow_id: int) -> None:
        self.flow_table.remove(key)
        self.rx_states.pop(flow_id, None)

    def lookup(self, key: FlowKey) -> Optional[int]:
        return self.flow_table.get(key)

    def readable(self, flow_id: int) -> int:
        state = self.rx_states.get(flow_id)
        return 0 if state is None else state.reassembly.readable

    def read(self, flow_id: int, nbytes: int) -> bytes:
        """The host's recv() DMA out of the data buffer."""
        state = self.rx_states.get(flow_id)
        return b"" if state is None else state.reassembly.read(nbytes)

    # ------------------------------------------------------------- parsing
    def parse(self, segment: TcpSegment) -> Optional[TcpEvent]:
        """Process one received segment; returns the control-path event.

        The receiver's view of the 4-tuple is the reverse of the
        sender's, so lookups use ``segment.flow_key.reversed()``.
        """
        self.packets_parsed += 1
        key = segment.flow_key.reversed()
        flow_id = self.flow_table.get(key)
        if flow_id is None:
            if segment.syn and not segment.has_ack and self.passive_open is not None:
                flow_id = self.passive_open(segment)
            if flow_id is None:
                self.packets_dropped_no_flow += 1
                return None

        state = self.rx_states[flow_id]
        now = self.now_fn()
        event = TcpEvent(EventKind.RX_PACKET, flow_id, timestamp=now)

        if segment.rst:
            event.rst = True
            event.coalescible = False
            return event

        if segment.syn:
            event.syn = True
            event.irs = segment.seq
            event.coalescible = False
            if segment.options.mss is not None:
                event.mss = segment.options.mss
            # Data reception starts after the SYN's sequence number.
            self.set_initial_rcv_nxt(flow_id, seq_add(segment.seq, 1))
            # RFC 7323: remember the peer's window-scale shift; every
            # later segment's 16-bit window is multiplied back up.
            if segment.options.window_scale is not None:
                state.peer_wscale = segment.options.window_scale
            event.wnd = segment.window  # SYN windows are never scaled

        if segment.has_ack:
            if (
                state.last_ack_seen is not None
                and segment.ack == state.last_ack_seen
                and not segment.payload
                and not segment.syn
                and not segment.fin
                and segment.window == state.last_wnd_seen
            ):
                # Same cumulative ACK, no data, no window change: dup.
                event.dup_incr = 1
                event.coalescible = False
                self.dup_acks_detected += 1
            else:
                event.ack = segment.ack
            state.last_ack_seen = segment.ack
            state.last_wnd_seen = segment.window
            # De-scale (SYN windows are never scaled, RFC 7323).
            if segment.syn:
                event.wnd = segment.window
            else:
                event.wnd = segment.window << state.peer_wscale
            if segment.options.sack_blocks:
                event.sack_blocks = list(segment.options.sack_blocks)

        if segment.payload:
            reasm = state.reassembly
            in_order = segment.seq == reasm.rcv_nxt
            accepted = reasm.offer(segment.seq, segment.payload)
            if not in_order:
                # Out-of-order: not coalescible (GRO rule, §4.4.1), and
                # an immediate (duplicate) ACK must go out so the sender
                # can fast-retransmit.
                self.out_of_order_packets += 1
                event.coalescible = False
                state.in_order_streak = 0
            else:
                state.in_order_streak += 1
            event.ack_needed = True
            if accepted:
                if self._check_pending_fin(state):
                    # An earlier out-of-order FIN is now in order.
                    event.fin = True
                    self.notifications.append(
                        RxNotification(flow_id, reasm.rcv_nxt, eof=True)
                    )
                event.rcv_nxt = reasm.rcv_nxt
                if reasm.readable:
                    self.notifications.append(
                        RxNotification(flow_id, reasm.rcv_nxt)
                    )

        if segment.fin:
            fin_seq = seq_add(segment.seq, len(segment.payload))
            if seq_gt(state.reassembly.rcv_nxt, fin_seq):
                # Retransmitted FIN: our ACK was lost, re-ACK it.
                event.ack_needed = True
            else:
                state.fin_seq = fin_seq
                if self._check_pending_fin(state):
                    event.fin = True
                    event.rcv_nxt = state.reassembly.rcv_nxt
                    event.ack_needed = True
                    self.notifications.append(
                        RxNotification(
                            flow_id, state.reassembly.rcv_nxt, eof=True
                        )
                    )
            event.coalescible = False

        # A pure window-update / keep-alive still needs its state routed.
        return event

    def _check_pending_fin(self, state: RxFlowState) -> bool:
        """Consume a pending FIN once reassembly reaches it."""
        if state.fin_seq is not None and state.reassembly.rcv_nxt == state.fin_seq:
            # FIN occupies one sequence number.
            state.reassembly.rcv_nxt = seq_add(state.fin_seq, 1)
            state.fin_seq = None
            return True
        return False

    def drain_notifications(self) -> List[RxNotification]:
        notes, self.notifications = self.notifications, []
        return notes
