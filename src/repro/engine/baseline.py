"""Comparison designs: the stalling baseline and the TONIC-like design.

* :class:`StallingAccelerator` (w-RMW) — models the existing
  100 Gbps-capable FPGA stacks (Limago [44]) that keep TCP processing
  atomic by stalling between events of the same pipeline: one event every
  ``stall_cycles`` (17 in the paper's Fig 2/Fig 15/Fig 16b baselines).
* :class:`SingleCycleAccelerator` (w/o-RMW) — the theoretical TONIC-like
  design: one event per cycle at 100 MHz with *no* stalls, obtained in
  hardware by forcing all RMW work into a single cycle (§2.5) — which is
  what costs TONIC byte-level transfer, connectivity and versatility.
* :class:`NullFpu` — a latency-only FPU for event-rate micro-benchmarks
  (Figs 15, 16b) where the processing *content* is irrelevant.
"""

from __future__ import annotations

from typing import Optional

from ..sim.component import Component
from ..sim.fifo import Fifo
from ..tcp.tcb import Tcb
from .events import TcpEvent
from .fpu import Fpu, ProcessResult


class NullFpu(Fpu):
    """An FPU that only models pipeline latency; used for rate studies."""

    def __init__(self, latency_cycles: int) -> None:
        super().__init__("newreno")
        self._latency = latency_cycles

    @property
    def latency_cycles(self) -> int:
        return self._latency

    def process(self, tcb: Tcb, dup_count: int, now_s: float) -> ProcessResult:
        self.passes += 1
        return ProcessResult(tcb=tcb)


class StallingAccelerator(Component):
    """w-RMW: serialize events, stalling ``stall_cycles`` between them.

    The stall keeps the read-modify-write on the TCB atomic — the
    behaviour of Limago-class designs (§3.1).  Throughput is exactly
    ``freq / stall_cycles`` events per second, independent of workload.
    """

    def __init__(
        self,
        stall_cycles: int = 17,
        freq_hz: float = 250e6,
        input_depth: int = 1024,
    ) -> None:
        super().__init__("w-rmw-baseline")
        if stall_cycles < 1:
            raise ValueError("stall must be at least one cycle")
        self.stall_cycles = stall_cycles
        self.freq_hz = freq_hz
        self.input: Fifo[TcpEvent] = Fifo(input_depth, "baseline.in")
        self._stall_remaining = 0
        self.events_processed = 0
        self.bytes_processed = 0

    def offer_event(self, event: TcpEvent) -> bool:
        return self.input.push(event)

    def busy(self) -> bool:
        return bool(self.input) or self._stall_remaining > 0

    def tick(self) -> None:
        self.cycle += 1
        if self._stall_remaining > 0:
            self._stall_remaining -= 1
            return
        event = self.input.try_pop()
        if event is None:
            return
        self.events_processed += 1
        if event.req is not None:
            self.bytes_processed += event.req  # req carries size in rate runs
        self._stall_remaining = self.stall_cycles - 1

    def events_per_second(self) -> float:
        if self.cycle == 0:
            return 0.0
        return self.events_processed * self.freq_hz / self.cycle


class SingleCycleAccelerator(Component):
    """w/o-RMW: one event per cycle, TONIC-style, at 100 MHz.

    Unlike TONIC we let the request size be arbitrary (the Fig 2
    w/o-RMW curve makes exactly this assumption).
    """

    def __init__(self, freq_hz: float = 100e6, input_depth: int = 1024) -> None:
        super().__init__("wo-rmw-tonic")
        self.freq_hz = freq_hz
        self.input: Fifo[TcpEvent] = Fifo(input_depth, "tonic.in")
        self.events_processed = 0
        self.bytes_processed = 0

    def offer_event(self, event: TcpEvent) -> bool:
        return self.input.push(event)

    def busy(self) -> bool:
        return bool(self.input)

    def tick(self) -> None:
        self.cycle += 1
        event = self.input.try_pop()
        if event is None:
            return
        self.events_processed += 1
        if event.req is not None:
            self.bytes_processed += event.req

    def events_per_second(self) -> float:
        if self.cycle == 0:
            return 0.0
        return self.events_processed * self.freq_hz / self.cycle
