"""wrk-style HTTP load generator (§5.2).

The functional counterpart of :func:`repro.apps.nginx.simulate_closed_loop`:
drives GET-sized requests and 256 B responses over real connections on
the two-engine testbed and measures per-request latency in *simulated*
time.  Since the harness frames requests by byte counts, the wire
carries the exact ``http_get()`` request and response sizes of the
nginx exhibit without a protocol parser in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.testbed import Testbed
from ..sim.stats import Histogram
from ..traffic import Fixed, Scenario, TrafficClass, run_scenario
from .nginx import RESPONSE_BYTES, http_get


@dataclass
class WrkResult:
    requests_completed: int
    elapsed_s: float
    latencies: Histogram

    @property
    def requests_per_s(self) -> float:
        return self.requests_completed / self.elapsed_s if self.elapsed_s else 0.0


def wrk_scenario(
    connections: int = 4, requests_per_connection: int = 8
) -> Scenario:
    """The wrk exhibit as a traffic scenario: closed-loop HTTP GETs."""
    return Scenario(
        name="wrk",
        description="closed-loop GET/256B-response over persistent conns",
        server_port=80,
        classes=[
            TrafficClass(
                name="wrk",
                request=Fixed(len(http_get())),
                response=Fixed(RESPONSE_BYTES),
                connections=connections,
                rounds=requests_per_connection,
            )
        ],
    )


def run_functional_wrk(
    connections: int = 4,
    requests_per_connection: int = 8,
    testbed: Testbed = None,
    max_time_s: float = 2.0,
    backend: str = "f4t",
) -> WrkResult:
    """Closed-loop GETs over real connections; returns rate + latencies.

    A thin preset over :mod:`repro.traffic`'s persistent closed loop.
    ``backend`` picks any :mod:`repro.fabric` offload backend; the
    default is the F4T engine testbed, unchanged.
    """
    result = run_scenario(
        wrk_scenario(connections, requests_per_connection),
        testbed=testbed,
        setup_time_s=max_time_s,
        run_time_s=max_time_s,
        raise_on_incomplete=True,
        backend=backend,
    )
    metrics = result.classes["wrk"]
    return WrkResult(metrics.completed, result.elapsed_s, metrics.latencies)
