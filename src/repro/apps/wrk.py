"""wrk-style HTTP load generator (§5.2).

The functional counterpart of :func:`repro.apps.nginx.simulate_closed_loop`:
drives real GET requests over library sockets against a functional
:class:`~repro.apps.nginx.NginxServer` on the two-engine testbed and
measures per-request latency in *simulated* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..engine.testbed import Testbed
from ..host.library import F4TLibrary
from ..sim.stats import Histogram
from .nginx import NginxServer, RESPONSE_BYTES, http_get


@dataclass
class WrkResult:
    requests_completed: int
    elapsed_s: float
    latencies: Histogram

    @property
    def requests_per_s(self) -> float:
        return self.requests_completed / self.elapsed_s if self.elapsed_s else 0.0


def run_functional_wrk(
    connections: int = 4,
    requests_per_connection: int = 8,
    testbed: Testbed = None,
    max_time_s: float = 2.0,
) -> WrkResult:
    """Closed-loop GETs over real connections; returns rate + latencies."""
    tb = testbed if testbed is not None else Testbed()
    server_lib = F4TLibrary(
        tb.engine_b, pump=lambda cond, t: tb.run(until=cond, max_time_s=tb.now_s + t)
    )
    client_lib = F4TLibrary(
        tb.engine_a, pump=lambda cond, t: tb.run(until=cond, max_time_s=tb.now_s + t)
    )
    server = NginxServer(server_lib, port=80)

    client_flows: List[int] = [
        tb.engine_a.connect(tb.engine_b.ip, 80) for _ in range(connections)
    ]
    # Wait for all connections to establish while the server accepts.
    if not tb.run(
        until=lambda: (
            server.poll_accept(),
            len(server.connections) == connections,
        )[-1],
        max_time_s=max_time_s,
    ):
        raise TimeoutError("wrk connections failed to establish")

    latencies = Histogram("wrk-latency")
    start_s = tb.now_s
    request = http_get()
    issue_time = {flow: tb.now_s for flow in client_flows}
    remaining = {flow: requests_per_connection for flow in client_flows}
    for flow in client_flows:
        tb.engine_a.send_data(flow, request)
        issue_time[flow] = tb.now_s
    completed = 0
    total = connections * requests_per_connection

    def pump() -> bool:
        nonlocal completed
        server.serve_ready()
        for flow in client_flows:
            if tb.engine_a.readable(flow) >= RESPONSE_BYTES:
                tb.engine_a.recv_data(flow, RESPONSE_BYTES)
                latencies.record(tb.now_s - issue_time[flow])
                completed += 1
                remaining[flow] -= 1
                if remaining[flow] > 0:
                    tb.engine_a.send_data(flow, request)
                    issue_time[flow] = tb.now_s
        return completed >= total

    if not tb.run(until=pump, max_time_s=start_s + max_time_s):
        raise TimeoutError(f"wrk run stalled at {completed}/{total}")
    return WrkResult(completed, max(tb.now_s - start_s, 1e-12), latencies)
