"""The 128 B echoing (ping-pong) benchmark (§5.3, Fig 13).

Each flow sends a 128 B payload only after receiving the peer's message,
so at N flows the TCB access pattern has the *worst possible* temporal
locality: with more active flows than FPC slots, nearly every
transaction forces a DRAM swap.  This is the experiment that separates
F4T-with-DRAM (38 GB/s, throttled past 1024 flows) from F4T-with-HBM
(460 GB/s, flat) and both from Linux.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..engine.memory_manager import MemoryManager
from ..engine.testbed import Testbed
from ..engine.events import EventKind, TcpEvent
from ..host.calibration import F4T_CYCLES_PER_ECHO
from ..host.cpu import CpuModel
from ..sim.memory import DRAMModel
from ..tcp.tcb import Tcb
from ..traffic import Fixed, Scenario, TrafficClass, run_scenario


def echo_scenario(
    flows: int = 4, rounds: int = 10, payload_bytes: int = 128
) -> Scenario:
    """The echo benchmark as a traffic scenario: closed-loop ping-pong."""
    return Scenario(
        name="echo",
        description="closed-loop ping-pong over persistent connections",
        server_port=7,
        classes=[
            TrafficClass(
                name="echo",
                request=Fixed(payload_bytes),
                response=Fixed(payload_bytes),
                connections=flows,
                rounds=rounds,
            )
        ],
    )


def run_functional_echo(
    flows: int = 4,
    rounds: int = 10,
    payload_bytes: int = 128,
    testbed: Optional[Testbed] = None,
    max_time_s: float = 2.0,
    backend: str = "f4t",
) -> float:
    """Real ping-pong over ``flows`` connections; returns transactions/s.

    A thin preset over :mod:`repro.traffic`: each flow is a persistent
    closed-loop connection sending the next payload only after the
    previous echo lands — the worst-case TCB locality pattern.
    ``backend`` picks any :mod:`repro.fabric` offload backend; the
    default is the F4T engine testbed, unchanged.
    """
    result = run_scenario(
        echo_scenario(flows, rounds, payload_bytes),
        testbed=testbed,
        setup_time_s=max_time_s,
        run_time_s=max_time_s,
        raise_on_incomplete=True,
        backend=backend,
    )
    return result.classes["echo"].achieved_rps


def measure_dram_swap_rate(
    memory: str = "ddr4",
    flows: int = 65536,
    transactions: int = 4000,
    cache_entries: int = 512,
) -> float:
    """Micro-simulate the memory manager's swap path; transactions/s.

    One echo transaction for a DRAM-resident flow costs: handle the RX
    event against the DRAM TCB (cache fill + dirty write-back on a
    miss), swap the TCB in (read), and accept the displaced flow's
    swap-out (write) — all serialized on the DRAM channel (§4.3.1).
    """
    dram = DRAMModel.hbm() if memory == "hbm" else DRAMModel.ddr4()
    # Kernel time is integer picoseconds end-to-end (simlint F4T007);
    # the DRAM model's fractional busy horizon is ceiled on read.
    clock = {"ps": 0}
    manager = MemoryManager(
        dram, cache_entries=cache_entries, time_ps_fn=lambda: clock["ps"]
    )
    for flow_id in range(flows):
        manager.store(Tcb(flow_id=flow_id))
    busy_base_ps = dram.busy_until_ps  # exclude the priming stores

    for i in range(transactions):
        flow_id = i % flows  # round-robin: worst-case locality (§5.3)
        clock["ps"] = max(clock["ps"], math.ceil(dram.busy_until_ps))
        manager.handle_event(
            TcpEvent(EventKind.RX_PACKET, flow_id, ack_needed=True)
        )
        tcb, _ = manager.take(flow_id)  # swap-in read
        manager.store(tcb)  # displaced flow's swap-out write
    elapsed_ps = dram.busy_until_ps - busy_base_ps
    if elapsed_ps <= 0:
        return float("inf")
    return transactions / (elapsed_ps / 1e12)


@dataclass
class EchoModel:
    """Fig 13's F4T curves: software rate throttled by TCB swapping."""

    cores: int = 8
    memory: str = "hbm"
    sram_flows: int = 1024  # reference design: 8 FPCs x 128 (§4.4.2)
    cache_entries: int = 512

    def rate(self, flows: int) -> float:
        cpu = CpuModel(cores=self.cores)
        software = cpu.rate_for(F4T_CYCLES_PER_ECHO)
        if flows <= self.sram_flows:
            return software
        swap_rate = measure_dram_swap_rate(
            self.memory,
            flows=min(flows, 8192),  # locality is already worst-case
            transactions=2000,
            cache_entries=self.cache_entries,
        )
        # Fraction of transactions landing on DRAM-resident flows under
        # uniform round-robin access.
        dram_fraction = (flows - self.sram_flows) / flows
        # Swapping proceeds concurrently with the software path (the
        # engine hides it behind FPC processing, §4.3.2), so the
        # bottleneck is whichever is slower — not their sum.
        return min(software, swap_rate / dram_fraction)
