"""iPerf-style bulk data transfer (§5.1, Fig 8a).

The paper's first experiment: each CPU core generates send requests for a
single flow, and goodput is measured at the application (payload only —
the 78 B per-packet overhead is excluded, which is why 128 B requests
top out at 62.1 Gbps on a 100 Gbps link).

Two faces:

* :func:`run_functional_bulk` — drives real bytes through two engines on
  the testbed and reports measured goodput (integration-level fidelity);
* :class:`BulkTransferModel` — the calibrated end-to-end rate model used
  to regenerate Fig 8a/Fig 9 (min of software, PCIe, engine, link).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..engine.testbed import Testbed
from ..host.calibration import (
    F4T_CYCLES_PER_SEND_BULK,
    FPC_EVENTS_PER_SECOND,
)
from ..host.cpu import CpuModel
from ..host.pcie import PcieModel
from ..net.link import LINK_100G, Link


@dataclass
class BulkResult:
    goodput_gbps: float
    requests_per_s: float
    bytes_delivered: int
    elapsed_s: float
    bottleneck: str = "n/a"


def run_functional_bulk(
    total_bytes: int = 1_000_000,
    request_bytes: int = 1460,
    testbed: Optional[Testbed] = None,
    max_time_s: float = 1.0,
) -> BulkResult:
    """Move ``total_bytes`` through the real engines; measure goodput."""
    tb = testbed if testbed is not None else Testbed()
    a_flow, b_flow = tb.establish()
    start_s = tb.now_s
    sent = 0
    received = 0
    payload = bytes(request_bytes)

    def pump() -> bool:
        nonlocal sent, received
        while sent < total_bytes:
            chunk = payload[: min(request_bytes, total_bytes - sent)]
            accepted = tb.engine_a.send_data(a_flow, chunk)
            sent += accepted
            if accepted < len(chunk):
                break  # buffer full; let the engines drain
        readable = tb.engine_b.readable(b_flow)
        if readable:
            received += len(tb.engine_b.recv_data(b_flow, readable))
        return received >= total_bytes

    finished = tb.run(until=pump, max_time_s=start_s + max_time_s)
    elapsed = max(tb.now_s - start_s, 1e-12)
    if not finished:
        raise TimeoutError(f"bulk transfer stalled at {received}/{total_bytes} B")
    return BulkResult(
        goodput_gbps=received * 8 / elapsed / 1e9,
        requests_per_s=(received / request_bytes) / elapsed,
        bytes_delivered=received,
        elapsed_s=elapsed,
        bottleneck="functional",
    )


@dataclass
class BulkTransferModel:
    """End-to-end F4T bulk rate: min(software, PCIe, engine, link).

    The engine term uses the FPC event rate with coalescing: in bulk
    mode, events of the same flow coalesce in the scheduler, so the
    engine effectively never limits bulk throughput (§4.4.1, §5.1's
    observation that accumulated events act as one large request).
    """

    cores: int = 1
    link: Link = LINK_100G
    pcie: PcieModel = None  # type: ignore[assignment]
    coalescing: bool = True
    cycles_per_request: float = F4T_CYCLES_PER_SEND_BULK

    def __post_init__(self) -> None:
        if self.pcie is None:
            self.pcie = PcieModel()

    def request_rate(self, request_bytes: int, mss: int = 1460) -> BulkResult:
        """F4T's achievable request rate at this request size.

        Small requests accumulate into MSS-sized packets (§4.2.2 and the
        §5.1 observation that backpressure grows packet sizes), so the
        link constrains *bytes* at MSS packet granularity rather than
        packets at request granularity — this is how 64 B requests reach
        ~90 Gbps goodput in Fig 8.
        """
        cpu = CpuModel(cores=self.cores)
        software = cpu.rate_for(
            self.cycles_per_request + 0.05 * max(0, request_bytes - 128)
        )
        pcie = self.pcie.max_requests_per_s(request_bytes)
        link_goodput = self.link.max_goodput_gbps(mss) * 1e9 / 8  # bytes/s
        link = link_goodput / request_bytes
        if self.coalescing:
            # Coalesced same-flow events merge ahead of the FPC; the
            # engine processes the merged stream as one large request.
            engine = float("inf")
        else:
            engine = FPC_EVENTS_PER_SECOND
        rate = min(software, pcie, engine, link)
        bottleneck = {
            software: "software",
            pcie: "pcie",
            engine: "engine",
            link: "link",
        }[rate]
        return BulkResult(
            goodput_gbps=rate * request_bytes * 8 / 1e9,
            requests_per_s=rate,
            bytes_delivered=0,
            elapsed_s=0.0,
            bottleneck=bottleneck,
        )
