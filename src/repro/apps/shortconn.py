"""Short-connection churn: connection setup/teardown as the workload.

Datacenter RPC and HTTP traffic open and close connections constantly —
the pattern AccelTCP built its stateless-offload case on (§2.3) and the
reason F4T processes the full handshake and teardown in hardware.  This
driver stresses exactly that: each transaction is connect → request →
response → close, so the engines spend their time in SYN/FIN processing,
flow allocation, accept-queue distribution and teardown rather than in
the data path.

Functional only (the paper reports no churn numbers to calibrate
against): the value here is exercising flow-lifecycle machinery under
load and measuring the reproduction's own connections/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..engine.testbed import Testbed
from ..sim.stats import Histogram


@dataclass
class ChurnResult:
    connections_completed: int
    elapsed_s: float
    lifecycle_latencies: Histogram  # connect -> fully closed, per connection

    @property
    def connections_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.connections_completed / self.elapsed_s


def run_connection_churn(
    connections: int = 10,
    request_bytes: int = 64,
    concurrency: int = 4,
    testbed: Optional[Testbed] = None,
    max_time_s: float = 30.0,
) -> ChurnResult:
    """Run ``connections`` short transactions, ``concurrency`` at a time.

    Every transaction allocates a fresh flow (new ports, new TCB, new
    cuckoo entries) and fully tears it down, so flow IDs, CAM slots and
    accept queues must all recycle correctly.
    """
    tb = testbed if testbed is not None else Testbed()
    tb.engine_b.listen(80)
    request = bytes(request_bytes)
    latencies = Histogram("lifecycle")
    start_s = tb.now_s

    # Per-slot state machine: each slot runs one transaction at a time.
    IDLE, CONNECTING, SERVING, CLOSING = range(4)
    slots: List[dict] = [
        {"state": IDLE, "a_flow": None, "b_flow": None, "t0": 0.0}
        for _ in range(min(concurrency, connections))
    ]
    started = 0
    completed = 0
    accepted_queue: List[int] = []

    def pump() -> bool:
        nonlocal started, completed
        flow = tb.engine_b.accept(80)
        if flow is not None:
            accepted_queue.append(flow)
        for slot in slots:
            if slot["state"] == IDLE and started < connections:
                slot["a_flow"] = tb.engine_a.connect(tb.engine_b.ip, 80)
                slot["t0"] = tb.now_s
                slot["state"] = CONNECTING
                started += 1
                tb.engine_a.send_data(slot["a_flow"], request)
            elif slot["state"] == CONNECTING:
                if slot["b_flow"] is None and accepted_queue:
                    slot["b_flow"] = accepted_queue.pop(0)
                if slot["b_flow"] is not None:
                    readable = tb.engine_b.readable(slot["b_flow"])
                    if readable >= request_bytes:
                        data = tb.engine_b.recv_data(slot["b_flow"], readable)
                        tb.engine_b.send_data(slot["b_flow"], data)  # echo
                        slot["state"] = SERVING
            elif slot["state"] == SERVING:
                if tb.engine_a.readable(slot["a_flow"]) >= request_bytes:
                    tb.engine_a.recv_data(slot["a_flow"], request_bytes)
                    tb.engine_a.close_flow(slot["a_flow"])
                    tb.engine_b.close_flow(slot["b_flow"])
                    slot["state"] = CLOSING
            elif slot["state"] == CLOSING:
                gone_a = slot["a_flow"] not in tb.engine_a.flows
                gone_b = slot["b_flow"] not in tb.engine_b.flows
                if gone_a and gone_b:
                    latencies.record(tb.now_s - slot["t0"])
                    completed += 1
                    slot.update(state=IDLE, a_flow=None, b_flow=None)
        return completed >= connections

    if not tb.run(until=pump, max_time_s=max_time_s):
        raise TimeoutError(
            f"churn stalled: {completed}/{connections} transactions"
        )
    return ChurnResult(completed, max(tb.now_s - start_s, 1e-12), latencies)
