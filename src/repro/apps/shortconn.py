"""Short-connection churn: connection setup/teardown as the workload.

Datacenter RPC and HTTP traffic open and close connections constantly —
the pattern AccelTCP built its stateless-offload case on (§2.3) and the
reason F4T processes the full handshake and teardown in hardware.  This
driver stresses exactly that: each transaction is connect → request →
response → close, so the engines spend their time in SYN/FIN processing,
flow allocation, accept-queue distribution and teardown rather than in
the data path.

Functional only (the paper reports no churn numbers to calibrate
against): the value here is exercising flow-lifecycle machinery under
load and measuring the reproduction's own connections/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.testbed import Testbed
from ..sim.stats import Histogram
from ..traffic import PER_REQUEST, Fixed, Scenario, TrafficClass, run_scenario


@dataclass
class ChurnResult:
    connections_completed: int
    elapsed_s: float
    lifecycle_latencies: Histogram  # connect -> fully closed, per connection

    @property
    def connections_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.connections_completed / self.elapsed_s


def churn_preset(
    connections: int = 10, request_bytes: int = 64, concurrency: int = 4
) -> Scenario:
    """Connection churn as a traffic scenario: per-request lifecycle."""
    return Scenario(
        name="shortconn",
        description="closed-loop per-request churn (connect/req/resp/close)",
        server_port=80,
        classes=[
            TrafficClass(
                name="churn",
                request=Fixed(request_bytes),
                response=Fixed(request_bytes),
                lifecycle=PER_REQUEST,
                connections=min(concurrency, connections),
                transactions=connections,
            )
        ],
    )


def run_connection_churn(
    connections: int = 10,
    request_bytes: int = 64,
    concurrency: int = 4,
    testbed: Optional[Testbed] = None,
    max_time_s: float = 30.0,
    backend: str = "f4t",
) -> ChurnResult:
    """Run ``connections`` short transactions, ``concurrency`` at a time.

    A thin preset over :mod:`repro.traffic`'s per-request lifecycle:
    every transaction allocates a fresh flow (new ports, new TCB, new
    cuckoo entries) and fully tears it down, so flow IDs, CAM slots and
    accept queues must all recycle correctly.  A transaction counts only
    once both directions have vanished from the engines — TIME_WAIT
    lingering included.
    """
    result = run_scenario(
        churn_preset(connections, request_bytes, concurrency),
        testbed=testbed,
        run_time_s=max_time_s,
        raise_on_incomplete=True,
        backend=backend,
    )
    metrics = result.classes["churn"]
    return ChurnResult(metrics.completed, result.elapsed_s, metrics.lifecycle)
