"""Round-robin request workload (§5.1, Fig 8b).

Each CPU core generates send requests in a round-robin manner over its
own distinct set of 16 flows, so FtEngine receives events of *different*
flows back to back — the multi-flow stress case that parallel FPCs
target (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.testbed import Testbed
from ..host.calibration import F4T_CYCLES_PER_SEND_RR
from ..host.cpu import CpuModel
from ..host.pcie import PcieModel
from ..net.link import LINK_100G, Link
from ..traffic import Fixed, Scenario, TrafficClass, run_scenario
from .iperf import BulkResult

FLOWS_PER_CORE = 16


def round_robin_scenario(
    flows: int = FLOWS_PER_CORE,
    requests_per_flow: int = 64,
    request_bytes: int = 128,
) -> Scenario:
    """Round-robin requests as a traffic scenario: one-way streams."""
    return Scenario(
        name="roundrobin",
        description="closed-loop one-way request streams over many flows",
        server_port=80,
        classes=[
            TrafficClass(
                name="rr",
                request=Fixed(request_bytes),
                response=Fixed(0),
                connections=flows,
                rounds=requests_per_flow,
            )
        ],
    )


def run_functional_round_robin(
    flows: int = FLOWS_PER_CORE,
    requests_per_flow: int = 64,
    request_bytes: int = 128,
    testbed: Optional[Testbed] = None,
    max_time_s: float = 1.0,
    backend: str = "f4t",
) -> BulkResult:
    """Drive real round-robin requests over ``flows`` connections.

    A thin preset over :mod:`repro.traffic`: each flow is a persistent
    closed-loop connection pipelining one-way requests, so FtEngine sees
    events of *different* flows back to back.  Delivery to the server
    side is completion; ``bytes_delivered`` counts request bytes only.
    ``backend`` picks any :mod:`repro.fabric` offload backend; the
    default is the F4T engine testbed, unchanged.
    """
    result = run_scenario(
        round_robin_scenario(flows, requests_per_flow, request_bytes),
        testbed=testbed,
        setup_time_s=max_time_s,
        run_time_s=max_time_s,
        raise_on_incomplete=True,
        backend=backend,
    )
    metrics = result.classes["rr"]
    elapsed = result.elapsed_s
    return BulkResult(
        goodput_gbps=metrics.bytes_delivered * 8 / elapsed / 1e9,
        requests_per_s=metrics.bytes_delivered / request_bytes / elapsed,
        bytes_delivered=metrics.bytes_delivered,
        elapsed_s=elapsed,
        bottleneck="functional",
    )


@dataclass
class RoundRobinModel:
    """Fig 8b's F4T curve: like bulk but with the costlier RR software path.

    Under link backpressure the increased packet-generation period lets
    events accumulate, growing packet sizes (§5.1) — so the link term is
    byte-granular here too, and F4T converges near 90 Gbps goodput.
    """

    cores: int = 1
    link: Link = LINK_100G
    pcie: PcieModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.pcie is None:
            self.pcie = PcieModel()

    def request_rate(self, request_bytes: int, mss: int = 1460) -> BulkResult:
        cpu = CpuModel(cores=self.cores)
        software = cpu.rate_for(
            F4T_CYCLES_PER_SEND_RR + 0.05 * max(0, request_bytes - 128)
        )
        pcie = self.pcie.max_requests_per_s(request_bytes)
        link_goodput = self.link.max_goodput_gbps(mss) * 1e9 / 8
        link = link_goodput / request_bytes
        rate = min(software, pcie, link)
        bottleneck = {software: "software", pcie: "pcie", link: "link"}[rate]
        return BulkResult(
            goodput_gbps=rate * request_bytes * 8 / 1e9,
            requests_per_s=rate,
            bytes_delivered=0,
            elapsed_s=0.0,
            bottleneck=bottleneck,
        )
