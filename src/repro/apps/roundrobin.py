"""Round-robin request workload (§5.1, Fig 8b).

Each CPU core generates send requests in a round-robin manner over its
own distinct set of 16 flows, so FtEngine receives events of *different*
flows back to back — the multi-flow stress case that parallel FPCs
target (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..engine.testbed import Testbed
from ..host.calibration import F4T_CYCLES_PER_SEND_RR
from ..host.cpu import CpuModel
from ..host.pcie import PcieModel
from ..net.link import LINK_100G, Link
from .iperf import BulkResult

FLOWS_PER_CORE = 16


def run_functional_round_robin(
    flows: int = FLOWS_PER_CORE,
    requests_per_flow: int = 64,
    request_bytes: int = 128,
    testbed: Optional[Testbed] = None,
    max_time_s: float = 1.0,
) -> BulkResult:
    """Drive real round-robin requests over ``flows`` connections."""
    tb = testbed if testbed is not None else Testbed()
    tb.engine_b.listen(80)
    a_flows: List[int] = [tb.engine_a.connect(tb.engine_b.ip, 80) for _ in range(flows)]
    b_flows: List[int] = []

    def all_accepted() -> bool:
        flow = tb.engine_b.accept(80)
        if flow is not None:
            b_flows.append(flow)
        return len(b_flows) == flows

    if not tb.run(until=all_accepted, max_time_s=max_time_s):
        raise TimeoutError("round-robin connection setup failed")

    start_s = tb.now_s
    payload = bytes(request_bytes)
    total = flows * requests_per_flow * request_bytes
    sent = [0] * flows
    received = 0

    def pump() -> bool:
        nonlocal received
        # One request per flow per visit: round-robin order.
        for i, flow in enumerate(a_flows):
            if sent[i] < requests_per_flow * request_bytes:
                sent[i] += tb.engine_a.send_data(flow, payload)
        for flow in b_flows:
            readable = tb.engine_b.readable(flow)
            if readable:
                received += len(tb.engine_b.recv_data(flow, readable))
        return received >= total

    if not tb.run(until=pump, max_time_s=start_s + max_time_s):
        raise TimeoutError(f"round-robin transfer stalled at {received}/{total} B")
    elapsed = max(tb.now_s - start_s, 1e-12)
    return BulkResult(
        goodput_gbps=received * 8 / elapsed / 1e9,
        requests_per_s=received / request_bytes / elapsed,
        bytes_delivered=received,
        elapsed_s=elapsed,
        bottleneck="functional",
    )


@dataclass
class RoundRobinModel:
    """Fig 8b's F4T curve: like bulk but with the costlier RR software path.

    Under link backpressure the increased packet-generation period lets
    events accumulate, growing packet sizes (§5.1) — so the link term is
    byte-granular here too, and F4T converges near 90 Gbps goodput.
    """

    cores: int = 1
    link: Link = LINK_100G
    pcie: PcieModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.pcie is None:
            self.pcie = PcieModel()

    def request_rate(self, request_bytes: int, mss: int = 1460) -> BulkResult:
        cpu = CpuModel(cores=self.cores)
        software = cpu.rate_for(
            F4T_CYCLES_PER_SEND_RR + 0.05 * max(0, request_bytes - 128)
        )
        pcie = self.pcie.max_requests_per_s(request_bytes)
        link_goodput = self.link.max_goodput_gbps(mss) * 1e9 / 8
        link = link_goodput / request_bytes
        rate = min(software, pcie, link)
        bottleneck = {software: "software", pcie: "pcie", link: "link"}[rate]
        return BulkResult(
            goodput_gbps=rate * request_bytes * 8 / 1e9,
            requests_per_s=rate,
            bytes_delivered=0,
            elapsed_s=0.0,
            bottleneck=bottleneck,
        )
