"""Workloads: iPerf bulk, round-robin, Nginx+wrk, and the echo benchmark."""

from .echo import EchoModel, measure_dram_swap_rate, run_functional_echo
from .iperf import BulkResult, BulkTransferModel, run_functional_bulk
from .nginx import (
    HTTP_RESPONSE,
    NginxPerformanceModel,
    NginxServer,
    RESPONSE_BYTES,
    http_get,
    simulate_closed_loop,
)
from .roundrobin import RoundRobinModel, run_functional_round_robin
from .shortconn import ChurnResult, run_connection_churn
from .wrk import WrkResult, run_functional_wrk

__all__ = [
    "BulkResult",
    "ChurnResult",
    "BulkTransferModel",
    "EchoModel",
    "HTTP_RESPONSE",
    "NginxPerformanceModel",
    "NginxServer",
    "RESPONSE_BYTES",
    "RoundRobinModel",
    "WrkResult",
    "http_get",
    "measure_dram_swap_rate",
    "run_functional_bulk",
    "run_functional_echo",
    "run_connection_churn",
    "run_functional_round_robin",
    "run_functional_wrk",
    "simulate_closed_loop",
]
