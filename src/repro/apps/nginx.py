"""Nginx web-server workload (§5.2, Figs 1, 10, 11, 12).

Three faces:

* :class:`NginxServer` — a small functional HTTP-ish server running on
  the F4T socket library, serving 256 B responses (HTTP header + HTML
  payload, §5.2) over real engine connections;
* :class:`NginxPerformanceModel` — per-request CPU budgets for Linux and
  F4T, reproducing the Fig 1a/Fig 11 cycle breakdowns and the Fig 10
  2.6–2.8x request-rate gap;
* :func:`simulate_closed_loop` — a closed-loop discrete-event latency
  simulation (wrk-style: ``flows`` concurrent clients, each issuing the
  next request when the previous response lands) behind Fig 12's median
  and p99 numbers.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..host.calibration import (
    HOST_CPU_FREQ_HZ,
    NGINX_F4T_KERNEL_FRACTION,
    NGINX_F4T_LIB_FRACTION,
    NGINX_LINUX_APP_FRACTION,
    NGINX_LINUX_CYCLES_PER_REQ,
    NGINX_LINUX_KERNEL_FRACTION,
    NGINX_LINUX_TCP_FRACTION,
)
from ..host.cpu import CpuModel, CycleAccount
from ..host.library import F4TLibrary, F4TSocket
from ..sim.stats import Histogram

#: The evaluation's response: 256 B including HTTP header and HTML
#: payload (128 B responses don't fit Nginx's header, §5.2).
RESPONSE_BYTES = 256
HTTP_RESPONSE = (
    b"HTTP/1.1 200 OK\r\n"
    b"Server: repro-nginx\r\n"
    b"Content-Type: text/html\r\n"
    b"Content-Length: 170\r\n"
    b"\r\n" + b"<html><body>" + b"x" * (170 - 26) + b"</body></html>"
)
assert len(HTTP_RESPONSE) == RESPONSE_BYTES, len(HTTP_RESPONSE)


class NginxServer:
    """A functional epoll-driven web server on the F4T socket library."""

    def __init__(self, library: F4TLibrary, port: int = 80) -> None:
        self.library = library
        self.port = port
        self.listener = library.socket()
        self.listener.bind_listen(port)
        self.connections: List[F4TSocket] = []
        self.requests_served = 0

    def poll_accept(self) -> Optional[F4TSocket]:
        """Non-blocking accept of one pending connection."""
        flow = self.library.engine.accept(self.port)
        if flow is None:
            return None
        sock = self.library.socket()
        sock.connected = True
        self.library._bind(sock, flow)
        self.connections.append(sock)
        return sock

    def serve_ready(self) -> int:
        """Serve every connection with a complete request buffered."""
        served = 0
        self.poll_accept()
        for sock in list(self.connections):
            if sock.flow_id is None:
                continue
            readable = self.library.engine.readable(sock.flow_id)
            if readable <= 0:
                continue
            request = self.library.runtime.recv(sock.flow_id, readable)
            self.library.runtime.flush()
            if b"\r\n\r\n" not in request:
                continue  # incomplete request; wait for the rest
            sent = self.library.runtime.send(sock.flow_id, HTTP_RESPONSE)
            self.library.runtime.flush()
            if sent:
                served += 1
                self.requests_served += 1
        return served


def http_get(path: str = "/index.html") -> bytes:
    return f"GET {path} HTTP/1.1\r\nHost: repro\r\n\r\n".encode()


# --------------------------------------------------------------- modelling
@dataclass
class NginxPerformanceModel:
    """Per-request cycle budgets for the two stacks."""

    cores: int = 1

    # ------------------------------------------------------------- budgets
    @property
    def linux_cycles_per_request(self) -> float:
        return NGINX_LINUX_CYCLES_PER_REQ

    @property
    def f4t_cycles_per_request(self) -> float:
        """F4T keeps the app + filesystem work; TCP cycles vanish (§5.2).

        The application share grows from 25% to 70% of a smaller total —
        the 2.8x more CPU cycles for the application of Fig 11.
        """
        app_cycles = NGINX_LINUX_APP_FRACTION * NGINX_LINUX_CYCLES_PER_REQ
        app_fraction_f4t = 1.0 - NGINX_F4T_KERNEL_FRACTION - NGINX_F4T_LIB_FRACTION
        return app_cycles / app_fraction_f4t

    def request_rate(self, stack: str) -> float:
        cpu = CpuModel(cores=self.cores)
        if stack == "linux":
            return cpu.rate_for(self.linux_cycles_per_request)
        if stack == "f4t":
            return cpu.rate_for(self.f4t_cycles_per_request)
        raise ValueError(f"unknown stack {stack!r}")

    def speedup(self) -> float:
        """Fig 10's headline: 2.8x at the saturation point."""
        return self.linux_cycles_per_request / self.f4t_cycles_per_request

    def cpu_savings_fraction(self) -> float:
        """§5.2: CPU cycles saved at equal throughput (64%)."""
        return 1.0 - self.f4t_cycles_per_request / self.linux_cycles_per_request

    # ----------------------------------------------------------- breakdowns
    def cycle_breakdown(self, stack: str) -> CycleAccount:
        """Fig 1a (Linux) and Fig 11 (both stacks)."""
        account = CycleAccount()
        if stack == "linux":
            total = self.linux_cycles_per_request
            account.charge("application", NGINX_LINUX_APP_FRACTION * total)
            account.charge("tcp_stack", NGINX_LINUX_TCP_FRACTION * total)
            account.charge("kernel_other", NGINX_LINUX_KERNEL_FRACTION * total)
        elif stack == "f4t":
            total = self.f4t_cycles_per_request
            app = 1.0 - NGINX_F4T_KERNEL_FRACTION - NGINX_F4T_LIB_FRACTION
            account.charge("application", app * total)
            account.charge("kernel_other", NGINX_F4T_KERNEL_FRACTION * total)
            account.charge("f4t_library", NGINX_F4T_LIB_FRACTION * total)
            account.charge("tcp_stack", 0.0)
        else:
            raise ValueError(f"unknown stack {stack!r}")
        return account


# --------------------------------------------------------- closed-loop DES
ServiceSampler = Callable[[random.Random], float]

#: Linux's rare stall magnitude/probability: scheduler preemptions,
#: softirq batching and page-cache misses produce occasional requests an
#: order of magnitude slower — the source of Fig 12's heavy p99 tail.
_LINUX_STALL_PROB = 0.02
_LINUX_STALL_FACTOR = 25.0
_LINUX_SIGMA = 0.5
_F4T_SIGMA = 0.15


def linux_service_sampler(rng: random.Random) -> float:
    """Linux per-request service time: kernel path + rare large stalls.

    The distribution is mean-normalized so the throughput calibration
    (NGINX_LINUX_CYCLES_PER_REQ) is preserved while the tail carries the
    stalls behind Fig 12's 26x-worse p99.
    """
    base = NGINX_LINUX_CYCLES_PER_REQ / HOST_CPU_FREQ_HZ
    scale = 1.0 / (1.0 + _LINUX_STALL_PROB * (_LINUX_STALL_FACTOR - 1.0))
    if rng.random() < _LINUX_STALL_PROB:
        return base * _LINUX_STALL_FACTOR * scale
    normalizer = math.exp(_LINUX_SIGMA * _LINUX_SIGMA / 2)
    return base * scale * rng.lognormvariate(0.0, _LINUX_SIGMA) / normalizer


def f4t_service_sampler(rng: random.Random) -> float:
    """F4T per-request service time: thin library, tight distribution."""
    base = NginxPerformanceModel().f4t_cycles_per_request / HOST_CPU_FREQ_HZ
    normalizer = math.exp(_F4T_SIGMA * _F4T_SIGMA / 2)
    return base * rng.lognormvariate(0.0, _F4T_SIGMA) / normalizer


def network_latency_s(stack: str) -> float:
    """One-way request/response transport latency outside the server.

    Linux pays interrupt delivery, softirq scheduling and wake-ups on
    both directions; F4T's hardware path is a couple of PCIe/wire hops.
    """
    return 28e-6 if stack == "linux" else 7e-6


def simulate_closed_loop(
    stack: str,
    flows: int = 64,
    cores: int = 1,
    requests: int = 40_000,
    think_s: float = 1.2e-3,
    seed: int = 42,
) -> Tuple[float, Histogram]:
    """wrk-style closed loop: each flow re-requests after its response.

    ``think_s`` models the load generator's per-connection pacing: the
    Fig 12 latency experiment runs at moderate utilization (default),
    while the Fig 10 rate sweep uses a small think time to push every
    configuration to saturation.  Single ready queue, ``cores`` workers
    (Nginx worker processes behind SO_REUSEPORT, §4.6).

    Returns (requests/s, latency histogram in seconds).
    """
    sampler = linux_service_sampler if stack == "linux" else f4t_service_sampler
    net = network_latency_s(stack)
    rng = random.Random(seed)
    latencies = Histogram(f"{stack}-latency")

    # Event heap: (time, seq, kind, issue_time).
    events: List[Tuple[float, int, str, float]] = []
    seq = 0
    for _ in range(flows):
        start = rng.random() * max(think_s, 1e-9)  # desynchronized start
        heapq.heappush(events, (start + net, seq, "arrival", start))
        seq += 1
    free_cores = cores
    queue: List[Tuple[float, float]] = []  # (arrival_time, issue_time)
    completed = 0
    now = 0.0

    while completed < requests and events:
        now, _, kind, issued = heapq.heappop(events)
        if kind == "arrival":
            if free_cores > 0:
                free_cores -= 1
                heapq.heappush(
                    events, (now + sampler(rng), seq, "service_done", issued)
                )
                seq += 1
            else:
                queue.append((now, issued))
        else:  # service_done
            latencies.record(now - issued + net)  # + response transport
            completed += 1
            if queue:
                _, next_issued = queue.pop(0)
                heapq.heappush(
                    events, (now + sampler(rng), seq, "service_done", next_issued)
                )
                seq += 1
            else:
                free_cores += 1
            # The closed loop: this flow thinks, then issues again.
            next_issue = now + net + think_s
            heapq.heappush(events, (next_issue + net, seq, "arrival", next_issue))
            seq += 1

    rate = completed / now if now > 0 else 0.0
    return rate, latencies
