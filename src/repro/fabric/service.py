"""Per-backend NIC/stack service models for the soft functional stack.

A :class:`ServiceModel` answers one question: *when does a segment that
the transport decided to send actually reach the wire?*  Each offload
architecture in the design space differs in exactly the three knobs the
model exposes —

* **lanes** — how many segments can be in processing concurrently
  (F4T's parallel FPCs, Linux's cores, FlexTOE's single deep pipeline);
* **occupancy** — how long one segment holds its lane (F4T's
  one-event-per-2-cycles FPC rate, Linux's calibrated per-send cycles);
* **latency** — fixed processing delay added on top (pipeline depth for
  FlexTOE, the off-path proxy hop for PnO, kernel wakeups for Linux).

Every return value and every piece of internal state is **integer
picoseconds** (simlint F4T007 applies to this package).  The numbers
behind the non-F4T backends are *model-backed* — published
architecture descriptions scaled against this repo's calibrated host
constants — never paper-reproduced measurements; EXPERIMENTS.md labels
them accordingly.
"""

from __future__ import annotations

from typing import List

from ..host.calibration import (
    HOST_CPU_FREQ_HZ,
    LINUX_CYCLES_PER_SEND_BULK,
)

#: One FPC accepts one event per 2 cycles at 250 MHz (§4.2.3) = 8 ns.
F4T_EVENT_INTERVAL_PS = 8_000
#: End-to-end engine processing latency for one segment (model-backed,
#: consistent with the paper's "a few hundred ns" full-offload path).
F4T_ENGINE_LATENCY_PS = 600_000
#: One DRAM TCB swap on the §4.3.1 path, charged per segment of a flow
#: that overflows SRAM residency (model-backed).
F4T_DRAM_SWAP_PS = 250_000


class ServiceModel:
    """Base lane-occupancy model; subclasses set the three knobs.

    ``tx_ready_ps`` is the single hot call: pick the flow's lane, wait
    for it to free, hold it for the segment's occupancy, and return the
    instant the segment hits the wire (lane start + fixed latency).
    State is a per-lane busy-until array, so the model is deterministic
    and O(1) per segment.
    """

    name = "service"
    #: Concurrent processing contexts.
    lanes = 1
    #: Fixed added latency per segment (int ps).
    latency_ps = 0

    def __init__(self) -> None:
        self._lane_free_ps: List[int] = [0] * self.lanes

    def reset(self) -> None:
        self._lane_free_ps = [0] * self.lanes

    def occupancy_ps(self, payload_bytes: int) -> int:
        """How long one segment holds its lane (int ps)."""
        raise NotImplementedError

    def tx_ready_ps(self, now_ps: int, flow_slot: int, payload_bytes: int) -> int:
        """When a segment submitted now actually reaches the wire."""
        lane = flow_slot % self.lanes
        start = self._lane_free_ps[lane]
        if start < now_ps:
            start = now_ps
        self._lane_free_ps[lane] = start + self.occupancy_ps(payload_bytes)
        return start + self.latency_ps

    def rx_delay_ps(self, payload_bytes: int) -> int:
        """Ingress processing before the app-visible state changes."""
        return self.latency_ps

    def describe(self) -> str:
        return (
            f"{self.name}: {self.lanes} lane(s), "
            f"latency {self.latency_ps / 1e3:.1f} ns"
        )


class F4TService(ServiceModel):
    """The F4T FPC engine as a service model (fabric hosts only).

    Parallel FPC lanes at the one-event-per-2-cycles rate; flows beyond
    the SRAM residency capacity pay a DRAM TCB swap per segment — the
    Fig 13 cliff, expressed as a fabric host.  Point-to-point F4T runs
    use the real :class:`~repro.engine.ftengine.FtEngine`; this model
    exists so F4T can sit in N-host fabrics next to its rivals.
    """

    name = "f4t"

    def __init__(
        self,
        num_fpcs: int = 8,
        sram_flows: int = 1024,
        latency_ps: int = F4T_ENGINE_LATENCY_PS,
        dram_swap_ps: int = F4T_DRAM_SWAP_PS,
    ) -> None:
        self.lanes = num_fpcs
        self.latency_ps = latency_ps
        self.sram_flows = sram_flows
        self.dram_swap_ps = dram_swap_ps
        super().__init__()

    def occupancy_ps(self, payload_bytes: int) -> int:
        return F4T_EVENT_INTERVAL_PS

    def tx_ready_ps(self, now_ps: int, flow_slot: int, payload_bytes: int) -> int:
        ready = super().tx_ready_ps(now_ps, flow_slot, payload_bytes)
        if flow_slot >= self.sram_flows:
            # DRAM-resident flow: the TCB swap serializes ahead of the
            # segment (§4.3.1), lengthening its path but not the lane's.
            ready += self.dram_swap_ps
        return ready


class FlexToeService(ServiceModel):
    """FlexTOE-style fine-grained pipeline parallelism (model-backed).

    One deep data-path pipeline, no per-flow cores: aggregate segment
    rate is flow-count *independent* (its headline claim against
    per-flow-core designs) at the price of pipeline-depth latency.
    """

    name = "flextoe"
    lanes = 1

    def __init__(
        self,
        initiation_interval_ps: int = 15_000,
        latency_ps: int = 2_500_000,
    ) -> None:
        self.initiation_interval_ps = initiation_interval_ps
        self.latency_ps = latency_ps
        super().__init__()

    def occupancy_ps(self, payload_bytes: int) -> int:
        return self.initiation_interval_ps


class PnoService(ServiceModel):
    """PnO-style transparent off-path SmartNIC proxy (model-backed).

    TCP terminates on the SmartNIC SoC, off the host's critical path:
    throughput comparable to on-path offload, but every segment crosses
    the proxy hop — SoC forwarding plus an extra DMA — both directions.
    """

    name = "pno"

    def __init__(
        self,
        soc_cores: int = 4,
        occupancy_ps: int = 100_000,
        proxy_hop_ps: int = 5_000_000,
    ) -> None:
        self.lanes = soc_cores
        self._occupancy_ps = occupancy_ps
        self.latency_ps = proxy_hop_ps
        super().__init__()

    def occupancy_ps(self, payload_bytes: int) -> int:
        return self._occupancy_ps


class LinuxService(ServiceModel):
    """The in-kernel stack baseline, from the calibrated host constants.

    Per-segment cost is the Fig 8a calibration (fixed per-send cycles
    plus a per-byte copy term) on ``cores`` parallel cores; latency is
    the kernel wakeup/scheduling path.
    """

    name = "linux_stack"

    def __init__(self, cores: int = 4, latency_ps: int = 15_000_000) -> None:
        self.lanes = cores
        self.latency_ps = latency_ps
        #: Integer ps per 1000 CPU cycles, so per-call math stays exact.
        self._ps_per_kcycle = int(1e15 / HOST_CPU_FREQ_HZ)
        self._base_kcycles_x1000 = int(LINUX_CYCLES_PER_SEND_BULK * 1000)
        super().__init__()

    def occupancy_ps(self, payload_bytes: int) -> int:
        # base + 0.6 cycles/byte (the linux_stack bulk calibration),
        # carried in millicycles so no fractional ps ever accumulates.
        millicycles = self._base_kcycles_x1000 + 600 * payload_bytes
        return millicycles * self._ps_per_kcycle // 1_000_000


def service_for(backend: str, **overrides: int) -> ServiceModel:
    """Build the fabric-host service model for one backend name."""
    factories = {
        "f4t": F4TService,
        "flextoe": FlexToeService,
        "pno": PnoService,
        "linux_stack": LinuxService,
    }
    try:
        factory = factories[backend]
    except KeyError:
        raise KeyError(
            f"unknown backend {backend!r}; available: "
            + ", ".join(sorted(factories))
        ) from None
    return factory(**overrides)
