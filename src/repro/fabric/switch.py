"""A deterministic output-queued switch with shared-buffer contention.

N hosts attach through full-duplex links; every packet crosses one
uplink (serialization + propagation), is admitted against a shared
packet buffer, queues at its destination's output port, and leaves
through the egress serializer (+ propagation).  The three contended
resources that make fabric scenarios interesting — egress bandwidth,
shared buffer, and the admission policy arbitrating it — are all here:

* **Buffer partitioning** (``SwitchConfig.partition``): ``shared``
  (one pool, first come first buffered), ``static`` (hard per-output
  slice), or ``dynamic`` (classic dynamic-threshold: a port may hold at
  most ``alpha x`` the *remaining free* buffer, so hot ports are
  throttled while idle ports' share stays reclaimable).
* **Queueing** (``SwitchConfig.queueing``): per-output ``fifo``, or
  ``drr`` — deficit-round-robin across source hosts, an approximate
  fair-queueing discipline that stops one heavy sender from starving
  the rest of an incast.
* **ECN hook** (``SwitchConfig.ecn_threshold_bytes``): packets enqueued
  above the threshold are CE-marked; the soft stacks echo the mark and
  halve their windows — DCTCP-flavored, deliberately minimal.

Everything is integer picoseconds and integer bytes; events are
processed in global (time, port-index) order, so one seed replays one
run bit for bit (the switch itself has *no* RNG at all).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from ..net.link import LINK_100G, Link
from ..tcp.segment import ip_from_string
from .softstack import FabricPacket, _IntDirection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..check.lockstep import LockstepSanitizer

#: First host IP; host ``i`` is ``_BASE_IP + i`` (plain int arithmetic).
_BASE_IP = ip_from_string("10.0.0.1")


@dataclass(frozen=True)
class SwitchConfig:
    """Knobs for the output-queued shared-buffer switch."""

    #: Total packet buffer shared by all output queues.
    buffer_bytes: int = 1 << 21
    #: ``shared`` | ``static`` | ``dynamic`` (dynamic-threshold).
    partition: str = "dynamic"
    #: Dynamic-threshold alpha in eighths (8 = 1.0), kept integral so
    #: admission math never leaves integer bytes.
    dt_alpha_x8: int = 8
    #: ``fifo`` | ``drr`` (deficit round robin across source hosts).
    queueing: str = "fifo"
    #: DRR quantum per visit (bytes on the wire).
    drr_quantum_bytes: int = 3076
    #: CE-mark packets enqueued above this depth; 0 disables ECN.
    ecn_threshold_bytes: int = 0
    #: Host-to-switch and switch-to-host link (both directions).
    link: Link = field(default_factory=lambda: LINK_100G)

    def validate(self) -> None:
        if self.partition not in ("shared", "static", "dynamic"):
            raise ValueError(f"unknown partition {self.partition!r}")
        if self.queueing not in ("fifo", "drr"):
            raise ValueError(f"unknown queueing {self.queueing!r}")
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.dt_alpha_x8 <= 0:
            raise ValueError("dt_alpha_x8 must be positive")


class _OutputQueue:
    """One egress port's queue: FIFO, or DRR over per-source queues."""

    def __init__(self, config: SwitchConfig) -> None:
        self._drr = config.queueing == "drr"
        self._quantum = config.drr_quantum_bytes
        #: FIFO mode: one deque of (packet, enqueue_ps).
        self._fifo: Deque[Tuple[FabricPacket, int]] = deque()
        #: DRR mode: per-source deques plus the active rotation.
        self._per_src: Dict[int, Deque[Tuple[FabricPacket, int]]] = {}
        self._active: Deque[int] = deque()
        self._deficit: Dict[int, int] = {}
        self.queued_bytes = 0
        self.queued_packets = 0

    def push(self, packet: FabricPacket, src: int, enqueue_ps: int) -> None:
        if self._drr:
            queue = self._per_src.get(src)
            if queue is None:
                queue = self._per_src[src] = deque()
            if not queue:
                self._active.append(src)
                self._deficit[src] = 0
            queue.append((packet, enqueue_ps))
        else:
            self._fifo.append((packet, enqueue_ps))
        self.queued_bytes += packet.wire_bytes
        self.queued_packets += 1

    def head_ready_ps(self) -> Optional[int]:
        """Earliest enqueue instant among queued packets (None = empty)."""
        if not self._drr:
            return self._fifo[0][1] if self._fifo else None
        ready: Optional[int] = None
        for src in self._active:
            t = self._per_src[src][0][1]
            if ready is None or t < ready:
                ready = t
        return ready

    def pop(self) -> Tuple[FabricPacket, int]:
        """Dequeue the next packet per the discipline."""
        if not self._drr:
            packet, enqueue_ps = self._fifo.popleft()
        else:
            while True:
                src = self._active[0]
                queue = self._per_src[src]
                head_bytes = queue[0][0].wire_bytes
                if self._deficit[src] >= head_bytes:
                    self._deficit[src] -= head_bytes
                    packet, enqueue_ps = queue.popleft()
                    if not queue:
                        self._active.popleft()
                        self._deficit[src] = 0
                    break
                # Not enough deficit: top up and move to the next source.
                self._deficit[src] += self._quantum
                self._active.rotate(-1)
        self.queued_bytes -= packet.wire_bytes
        self.queued_packets -= 1
        return packet, enqueue_ps


class _FabricPort:
    """One host's NIC-side handle on the fabric (SoftPort-shaped)."""

    def __init__(self, fabric: "SwitchFabric", index: int) -> None:
        self._fabric = fabric
        self._index = index

    def send(self, packet: FabricPacket, now_ps: int) -> None:
        self._fabric._uplinks[self._index].transmit(packet, now_ps)

    def poll(self, now_ps: int) -> List[FabricPacket]:
        self._fabric.advance(now_ps)
        heap = self._fabric._delivery[self._index]
        due: List[FabricPacket] = []
        while heap and heap[0][0] <= now_ps:
            due.append(heapq.heappop(heap)[2])
        return due

    def next_arrival_ps(self) -> Optional[int]:
        heap = self._fabric._delivery[self._index]
        return heap[0][0] if heap else None

    @property
    def pending(self) -> int:
        return self._fabric.in_flight


class SwitchFabric:
    """N host ports around one output-queued shared-buffer switch."""

    def __init__(self, num_hosts: int, config: Optional[SwitchConfig] = None) -> None:
        if num_hosts < 2:
            raise ValueError("a fabric needs at least 2 hosts")
        self.config = config or SwitchConfig()
        self.config.validate()
        self.num_hosts = num_hosts
        link = self.config.link
        self._uplinks = [_IntDirection(link, None) for _ in range(num_hosts)]
        self._queues = [_OutputQueue(self.config) for _ in range(num_hosts)]
        self._egress_free_ps = [0] * num_hosts
        self._egress_prop_ps = int(link.propagation_delay_us * 10**6)
        self._bits_per_s = int(link.bandwidth_gbps * 1e9)
        #: Per-host inbound deliveries: heaps of (arrival_ps, seq, packet).
        self._delivery: List[List[Tuple[int, int, FabricPacket]]] = [
            [] for _ in range(num_hosts)
        ]
        self._delivery_seq = 0
        self.buffer_used = 0
        # Counters (all deterministic; surfaced into FabricResult).
        self.forwarded = 0
        self.dropped = 0
        self.drops_per_port = [0] * num_hosts
        self.ecn_marked = 0
        self.peak_buffer_bytes = 0
        #: Observability (repro.obs): a TraceBus, or None (free default).
        self.trace = None

    # -------------------------------------------------------------- wiring
    def host_ip(self, index: int) -> int:
        return _BASE_IP + index

    def port(self, index: int) -> _FabricPort:
        return _FabricPort(self, index)

    def _host_of_ip(self, ip: int) -> Optional[int]:
        index = ip - _BASE_IP
        return index if 0 <= index < self.num_hosts else None

    # ------------------------------------------------------------ policies
    def _admit_limit(self, out_port: int) -> int:
        """Max queued bytes this output may hold right now."""
        config = self.config
        if config.partition == "shared":
            return config.buffer_bytes
        if config.partition == "static":
            return config.buffer_bytes // self.num_hosts
        # Dynamic threshold: alpha x free buffer, evaluated on arrival.
        free = config.buffer_bytes - self.buffer_used
        return config.dt_alpha_x8 * free // 8

    # ------------------------------------------------------ the event loop
    def _next_ingress(self) -> Optional[Tuple[int, int]]:
        """Earliest (arrival_ps, src_index) across uplinks."""
        best: Optional[Tuple[int, int]] = None
        for index, uplink in enumerate(self._uplinks):
            t = uplink.next_arrival_ps()
            if t is not None and (best is None or t < best[0]):
                best = (t, index)
        return best

    def _next_egress(self) -> Optional[Tuple[int, int]]:
        """Earliest (start_ps, out_port) an egress could begin serving."""
        best: Optional[Tuple[int, int]] = None
        for index, queue in enumerate(self._queues):
            head = queue.head_ready_ps()
            if head is None:
                continue
            start = self._egress_free_ps[index]
            if start < head:
                start = head
            if best is None or start < best[0]:
                best = (start, index)
        return best

    def next_event_ps(self) -> Optional[int]:
        """Earliest instant at which the fabric's state next changes."""
        times: List[int] = []
        ingress = self._next_ingress()
        if ingress is not None:
            times.append(ingress[0])
        egress = self._next_egress()
        if egress is not None:
            times.append(egress[0])
        for heap in self._delivery:
            if heap:
                times.append(heap[0][0])
        return min(times) if times else None

    def advance(self, now_ps: int) -> None:
        """Process every switch event due at or before ``now_ps``.

        Events are handled in global time order with ingress admissions
        before egress starts at the same instant, ties across ports
        broken by host index — a fixed total order, hence determinism.
        """
        while True:
            ingress = self._next_ingress()
            egress = self._next_egress()
            ingress_t = ingress[0] if ingress is not None else None
            egress_t = egress[0] if egress is not None else None
            if ingress_t is not None and ingress_t <= now_ps and (
                egress_t is None or ingress_t <= egress_t
            ):
                t, src = ingress
                for packet in self._uplinks[src].deliver_due(t):
                    self._admit(packet, src, t)
                continue
            if egress_t is not None and egress_t <= now_ps:
                self._serve(egress[1], egress_t)
                continue
            return

    def _admit(self, packet: FabricPacket, src: int, now_ps: int) -> None:
        out_port = self._host_of_ip(packet.key.dst_ip)
        if out_port is None:
            self.dropped += 1  # no such host: blackholed
            return
        queue = self._queues[out_port]
        wire_bytes = packet.wire_bytes
        if queue.queued_bytes + wire_bytes > self._admit_limit(out_port):
            self.dropped += 1
            self.drops_per_port[out_port] += 1
            if self.trace is not None:
                self.trace.emit(
                    now_ps, "fabric", "switch", "drop", -1,
                    f"port={out_port} src={src} {wire_bytes}B "
                    f"depth={queue.queued_bytes}",
                )
            return
        threshold = self.config.ecn_threshold_bytes
        if threshold > 0 and queue.queued_bytes + wire_bytes > threshold:
            packet.ce = True
            self.ecn_marked += 1
            if self.trace is not None:
                self.trace.emit(
                    now_ps, "fabric", "switch", "ecn-mark", -1,
                    f"port={out_port} depth={queue.queued_bytes + wire_bytes}",
                )
        queue.push(packet, src, now_ps)
        self.buffer_used += wire_bytes
        if self.buffer_used > self.peak_buffer_bytes:
            self.peak_buffer_bytes = self.buffer_used

    def _serve(self, out_port: int, start_ps: int) -> None:
        queue = self._queues[out_port]
        packet, _ = queue.pop()
        self.buffer_used -= packet.wire_bytes
        ser_ps = packet.wire_bytes * 8 * 10**12 // self._bits_per_s
        self._egress_free_ps[out_port] = start_ps + ser_ps
        arrival = start_ps + ser_ps + self._egress_prop_ps
        self._delivery_seq += 1
        heapq.heappush(
            self._delivery[out_port], (arrival, self._delivery_seq, packet)
        )
        self.forwarded += 1

    # ----------------------------------------------------------- inventory
    @property
    def in_flight(self) -> int:
        total = sum(u.in_flight for u in self._uplinks)
        total += sum(q.queued_packets for q in self._queues)
        total += sum(len(h) for h in self._delivery)
        return total

    @property
    def frames_dropped(self) -> int:
        return self.dropped

    def describe(self) -> str:
        config = self.config
        return (
            f"{self.num_hosts}-host switch: {config.buffer_bytes >> 10} KiB "
            f"{config.partition} buffer, {config.queueing} queues, "
            f"ecn@{config.ecn_threshold_bytes}"
        )


# ---------------------------------------------------------------- sharding
class CellSwitch:
    """The slice of the output-queued switch owned by one shard cell.

    ``repro.shard`` decomposes :class:`SwitchFabric` by ownership: a
    cell owns its hosts' *uplinks* (sender-side queueing + serialization
    are computed locally at send time, so the switch-arrival instant of
    every outbound packet is known before it crosses a cell boundary)
    and its hosts' *output queues + egress serializers* (receiver-side
    contention is resolved locally at admission time).  Nothing else of
    the switch exists, which is exactly why only ``static`` buffer
    partitioning (a hard per-port slice) and ``fifo`` queueing
    decompose: ``shared``/``dynamic`` couple every port through the
    global ``buffer_used``, and DRR's pop-time deficit rotation needs
    ingress state from all sources at once.

    Admissions MUST be fed in nondecreasing ``(arrival_ps, src, seq)``
    order — the shard worker's event loop guarantees that — so depth
    accounting can retire served packets lazily and stay exact.
    """

    def __init__(
        self,
        hosts: List[int],
        num_hosts: int,
        config: Optional[SwitchConfig] = None,
    ) -> None:
        config = config or SwitchConfig(partition="static")
        config.validate()
        if config.partition != "static":
            raise ValueError(
                f"cell switches require partition='static' (a per-port "
                f"buffer slice is the only locally decidable admission "
                f"policy), got {config.partition!r}"
            )
        if config.queueing != "fifo":
            raise ValueError(
                f"cell switches require queueing='fifo', got "
                f"{config.queueing!r}"
            )
        self.config = config
        self.hosts = list(hosts)
        self.num_hosts = num_hosts
        link = config.link
        self._bits_per_s = int(link.bandwidth_gbps * 1e9)
        self.prop_ps = int(link.propagation_delay_us * 10**6)
        self.port_limit = config.buffer_bytes // num_hosts
        #: Sender side, per owned host: uplink serializer free instant
        #: and the per-source sequence that makes exchange keys unique.
        self._uplink_free: Dict[int, int] = {h: 0 for h in hosts}
        self._uplink_seq: Dict[int, int] = {h: 0 for h in hosts}
        #: Receiver side, per owned host: egress free instant, queued
        #: depth, and the (serve_start_ps, wire_bytes) retirement queue.
        self._egress_free: Dict[int, int] = {h: 0 for h in hosts}
        self._depth: Dict[int, int] = {h: 0 for h in hosts}
        self._serving: Dict[int, Deque[Tuple[int, int]]] = {
            h: deque() for h in hosts
        }
        #: Per owned host: (delivery_ps, seq, packet) min-heaps.
        self._delivery: Dict[int, List[Tuple[int, int, FabricPacket]]] = {
            h: [] for h in hosts
        }
        self._delivery_seq = 0
        #: Lockstep sanitizer view (set by CellSim when attached); the
        #: admit hook checks the nondecreasing-arrival feed contract.
        self.san: Optional["LockstepSanitizer"] = None
        # Counters (all deterministic; merged into the shard result).
        self.forwarded = 0
        self.dropped = 0
        self.ecn_marked = 0
        self.bytes_sent = 0

    def host_ip(self, index: int) -> int:
        return _BASE_IP + index

    def host_of_ip(self, ip: int) -> Optional[int]:
        index = ip - _BASE_IP
        return index if 0 <= index < self.num_hosts else None

    def serialization_ps(self, wire_bytes: int) -> int:
        return wire_bytes * 8 * 10**12 // self._bits_per_s

    # ---------------------------------------------------------- sender side
    def send_from(
        self, src: int, packet: FabricPacket, at_ps: int
    ) -> Tuple[int, int]:
        """Run one packet through ``src``'s uplink; returns its
        ``(switch_arrival_ps, seq)`` exchange key."""
        free = self._uplink_free[src]
        start = at_ps if at_ps > free else free
        done = start + self.serialization_ps(packet.wire_bytes)
        self._uplink_free[src] = done
        self._uplink_seq[src] += 1
        self.bytes_sent += packet.wire_bytes
        return done + self.prop_ps, self._uplink_seq[src]

    # -------------------------------------------------------- receiver side
    def admit(self, packet: FabricPacket, now_ps: int) -> None:
        """Admit one packet arriving at the switch at ``now_ps``."""
        if self.san is not None:
            self.san.on_switch_admit(now_ps)
        out_port = self.host_of_ip(packet.key.dst_ip)
        if out_port is None or out_port not in self._depth:
            self.dropped += 1  # not ours: blackholed (mis-routed)
            return
        serving = self._serving[out_port]
        while serving and serving[0][0] <= now_ps:
            self._depth[out_port] -= serving.popleft()[1]
        wire_bytes = packet.wire_bytes
        depth = self._depth[out_port]
        if depth + wire_bytes > self.port_limit:
            self.dropped += 1
            return
        threshold = self.config.ecn_threshold_bytes
        if threshold > 0 and depth + wire_bytes > threshold:
            packet.ce = True
            self.ecn_marked += 1
        free = self._egress_free[out_port]
        start = now_ps if now_ps > free else free
        done = start + self.serialization_ps(wire_bytes)
        self._egress_free[out_port] = done
        self._depth[out_port] = depth + wire_bytes
        serving.append((start, wire_bytes))
        self._delivery_seq += 1
        heapq.heappush(
            self._delivery[out_port],
            (done + self.prop_ps, self._delivery_seq, packet),
        )
        self.forwarded += 1

    # ------------------------------------------------------------ the ports
    def deliver_due(self, host: int, now_ps: int) -> List[FabricPacket]:
        heap = self._delivery[host]
        due: List[FabricPacket] = []
        while heap and heap[0][0] <= now_ps:
            due.append(heapq.heappop(heap)[2])
        return due

    def next_delivery_ps(self, host: int) -> Optional[int]:
        heap = self._delivery[host]
        return heap[0][0] if heap else None

    def next_any_delivery_ps(self) -> Optional[int]:
        best: Optional[int] = None
        for heap in self._delivery.values():
            if heap and (best is None or heap[0][0] < best):
                best = heap[0][0]
        return best

    def port(self, host: int, outbound) -> "ShardPort":
        return ShardPort(self, host, outbound)


class ShardPort:
    """One host's NIC-side handle inside a shard cell (SoftPort-shaped).

    Outbound packets run through the cell switch's sender-side timing
    and are handed to ``outbound(arrival_ps, src, seq, packet)`` — the
    shard worker's router, which either feeds a local admission or
    ships the packet to the destination cell at the next epoch barrier.
    Inbound packets come from the cell switch's delivery heaps exactly
    like :class:`_FabricPort` does it.
    """

    def __init__(self, switch: CellSwitch, host: int, outbound) -> None:
        self._switch = switch
        self._host = host
        self._outbound = outbound

    def send(self, packet: FabricPacket, now_ps: int) -> None:
        arrival, seq = self._switch.send_from(self._host, packet, now_ps)
        self._outbound(arrival, self._host, seq, packet)

    def poll(self, now_ps: int) -> List[FabricPacket]:
        return self._switch.deliver_due(self._host, now_ps)

    def next_arrival_ps(self) -> Optional[int]:
        return self._switch.next_delivery_ps(self._host)

    @property
    def pending(self) -> int:
        return len(self._switch._delivery[self._host])
