"""``repro.fabric`` — pluggable offload backends + data-center fabrics.

Two halves, one design-space laboratory:

* **Backends** (:mod:`.backend`): the :class:`OffloadBackend` protocol
  extracted over the functional TCP stack, with four implementations —
  the paper's F4T FPC engine (the real :class:`~repro.engine.ftengine.
  FtEngine`, unchanged behind the interface), a FlexTOE-style
  pipeline-parallel data path, a PnO-style off-path SmartNIC proxy, and
  the calibrated ``linux_stack`` baseline.  Point-to-point runs of any
  backend plug straight into :mod:`repro.traffic`'s LoadEngine and the
  ``repro.apps`` presets via ``backend=``.

* **Fabric** (:mod:`.switch`, :mod:`.engine`, :mod:`.scenarios`): N
  hosts attached through a deterministic output-queued switch with
  shared-buffer contention (static/shared/dynamic-threshold
  partitioning, per-port FIFO or deficit-round-robin fair queueing, an
  ECN marking hook), driven by fabric scenario presets — ``incast``,
  ``outcast``, ``flash_crowd`` and CDN-style ``zipf_fanout`` — built on
  :mod:`repro.traffic`'s seeded arrival/size machinery.

``python -m repro fabric sweep`` runs the head-to-head comparison and
:mod:`repro.lab` persists it; every timestamp is integer picoseconds
(simlint F4T007 covers this package), so identical seeds replay
identical runs bit for bit.
"""

from .backend import (  # noqa: F401
    BackendSpec,
    OffloadBackend,
    available_backends,
    build_point_to_point,
    get_backend,
)
from .engine import FabricLoadEngine, FabricResult, run_fabric  # noqa: F401
from .service import (  # noqa: F401
    F4TService,
    FlexToeService,
    LinuxService,
    PnoService,
    ServiceModel,
    service_for,
)
from .scenarios import (  # noqa: F401
    FabricScenario,
    available_fabric_scenarios,
    get_fabric_scenario,
)
from .softstack import SoftStack, SoftTestbed  # noqa: F401
from .sweep import BackendComparison, sweep_backends  # noqa: F401
from .switch import SwitchConfig, SwitchFabric  # noqa: F401
