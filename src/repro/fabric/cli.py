"""``python -m repro fabric`` — backends and fabric scenarios.

Subcommands::

    python -m repro fabric list               # scenarios + backends
    python -m repro fabric run incast ...     # one scenario, one backend
    python -m repro fabric sweep ...          # head-to-head comparison
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args: argparse.Namespace) -> int:
    from .backend import available_backends, get_backend
    from .scenarios import available_fabric_scenarios, get_fabric_scenario

    print("backends:")
    for name in available_backends():
        spec = get_backend(name)
        print(f"  {name} [{spec.kind}, {spec.provenance}] — {spec.title}")
    print()
    print("fabric scenarios:")
    for name in available_fabric_scenarios():
        print(f"  {get_fabric_scenario(name).describe()}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .engine import run_fabric
    from .scenarios import get_fabric_scenario

    try:
        scenario = get_fabric_scenario(
            args.scenario, num_hosts=args.hosts, seed=args.seed
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    bus = None
    if args.trace:
        from ..obs import DEFAULT_MAX_EVENTS, TraceBus

        bus = TraceBus(max_events=args.trace_events or DEFAULT_MAX_EVENTS)
    try:
        result = run_fabric(
            scenario,
            backend=args.backend,
            load_scale=args.load_scale,
            trace=bus,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(result.summary())
    for key, value in result.scalars().items():
        print(f"  {key:>16}: {value:g}")
    if bus is not None:
        from ..obs import write_chrome_trace

        write_chrome_trace(args.trace, bus.events)
        dropped = f", {bus.dropped} dropped" if bus.dropped else ""
        print(f"wrote {args.trace} ({len(bus.events)} events{dropped}; "
              f"load into https://ui.perfetto.dev, or: "
              f"python -m repro obs summary {args.trace})")
    return 0 if result.finished else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import sweep_backends

    backends = args.backends.split(",") if args.backends else None
    try:
        comparison = sweep_backends(
            args.scenario,
            backends=backends,
            num_hosts=args.hosts,
            seed=args.seed,
            load_scale=args.load_scale,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(comparison.summary())
    print()
    print(comparison.table())
    if args.csv is not None:
        if args.csv == "-":
            sys.stdout.write(comparison.to_csv())
        else:
            with open(args.csv, "w") as handle:
                handle.write(comparison.to_csv())
            print(f"wrote {args.csv}")
    return 0 if all(r.finished for r in comparison.results) else 1


def add_fabric_parser(subparsers: argparse._SubParsersAction) -> None:
    fabric = subparsers.add_parser(
        "fabric",
        help="offload backends + multi-host fabric scenarios (repro.fabric)",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command")

    run = fabric_sub.add_parser("run", help="run one scenario on one backend")
    run.add_argument("scenario", help="fabric scenario (see: fabric list)")
    run.add_argument("--backend", default="f4t",
                     help="backend name (see: fabric list)")
    run.add_argument("--hosts", type=int, default=None,
                     help="number of hosts (default: scenario preset)")
    run.add_argument("--seed", type=int, default=None, help="top-level seed")
    run.add_argument("--load-scale", type=float, default=1.0,
                     help="multiply open-loop arrival rates")
    run.add_argument("--trace", metavar="PATH",
                     help="write a Chrome/Perfetto trace-event JSON")
    run.add_argument("--trace-events", type=int, default=None,
                     help="trace event cap (default 250000)")
    run.set_defaults(fabric_handler=_cmd_run)

    sweep = fabric_sub.add_parser(
        "sweep", help="run one scenario across backends, head to head"
    )
    sweep.add_argument("scenario", nargs="?", default="incast",
                       help="fabric scenario (default: incast)")
    sweep.add_argument("--backends", default=None, metavar="B1,B2,...",
                       help="comma-separated backends (default: all four)")
    sweep.add_argument("--hosts", type=int, default=8,
                       help="number of hosts (default 8)")
    sweep.add_argument("--seed", type=int, default=None, help="top-level seed")
    sweep.add_argument("--load-scale", type=float, default=1.0,
                       help="multiply open-loop arrival rates")
    sweep.add_argument("--csv", metavar="PATH",
                       help="write the comparison CSV ('-' = stdout)")
    sweep.set_defaults(fabric_handler=_cmd_sweep)

    fabric_sub.add_parser(
        "list", help="available backends and fabric scenarios"
    ).set_defaults(fabric_handler=_cmd_list)


def main(args: argparse.Namespace) -> int:
    handler = getattr(args, "fabric_handler", None)
    if handler is None:
        print("usage: python -m repro fabric {run,sweep,list}")
        return 2
    return handler(args)
