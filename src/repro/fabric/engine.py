"""The fabric driver: N backend hosts through the switch, one workload.

:class:`FabricLoadEngine` instantiates one :class:`~repro.fabric.
softstack.SoftStack` per host — the backend's service model supplies
the per-host NIC/stack timing, including F4T's own
:class:`~repro.fabric.service.F4TService` — attaches them to a
:class:`~repro.fabric.switch.SwitchFabric`, and drives the scenario's
communication pattern to completion with an event-driven run loop
(integer picoseconds; the loop jumps from packet arrival to timer
deadline to scheduled request arrival).

Like :class:`~repro.traffic.engine.LoadEngine`, both ends of every
connection live in this one process, so servers need no protocol
parsing: the driver knows each request's framing and answers with the
scheduled response size on the same connection.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..net.wire import derive_seed
from ..sim.stats import Histogram
from ..tcp.state_machine import TcpState
from .backend import get_backend
from .scenarios import FabricScenario
from .softstack import SoftStack, SoftStackConfig
from .switch import SwitchFabric

#: Shared zero payload; transfer content is opaque, only sizes matter.
_ZEROS = bytes(1 << 16)


@dataclass
class FabricResult:
    """One fabric run's measurements."""

    scenario: str
    backend: str
    num_hosts: int
    seed: int
    load_scale: float
    elapsed_s: float
    finished: bool
    offered: int
    completed: int
    bytes_delivered: int
    latencies: Histogram = field(default_factory=lambda: Histogram("latency"))
    retransmits: int = 0
    timeouts: int = 0
    switch_drops: int = 0
    ecn_marks: int = 0
    peak_buffer_bytes: int = 0

    @property
    def goodput_gbps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.bytes_delivered * 8 / self.elapsed_s / 1e9

    def _pct(self, p: float) -> float:
        return self.latencies.percentile(p) if len(self.latencies) else math.nan

    @property
    def p50_s(self) -> float:
        return self._pct(50)

    @property
    def p99_s(self) -> float:
        return self._pct(99)

    def scalars(self) -> Dict[str, float]:
        """Flat numeric view (lab drivers and the sweep table)."""
        return {
            "offered": float(self.offered),
            "completed": float(self.completed),
            "goodput_gbps": self.goodput_gbps,
            "p50_us": self.p50_s * 1e6,
            "p99_us": self.p99_s * 1e6,
            "retransmits": float(self.retransmits),
            "timeouts": float(self.timeouts),
            "switch_drops": float(self.switch_drops),
            "ecn_marks": float(self.ecn_marks),
            "peak_buffer_kib": self.peak_buffer_bytes / 1024,
            "elapsed_us": self.elapsed_s * 1e6,
        }

    def summary(self) -> str:
        state = "finished" if self.finished else "hit the time bound"
        return (
            f"{self.scenario} [{self.backend}] N={self.num_hosts}: "
            f"{self.completed}/{self.offered} transfers in "
            f"{self.elapsed_s * 1e6:.1f} simulated us ({state}); "
            f"{self.goodput_gbps:.2f} Gbps, p99 {self.p99_s * 1e6:.1f} us, "
            f"{self.retransmits} retransmits, {self.switch_drops} switch "
            f"drops, {self.ecn_marks} ECN marks"
        )


# Connection states.
_CONNECTING, _READY = range(2)


class _Transfer:
    """One request(+response) moving over a conn."""

    __slots__ = ("req_bytes", "resp_bytes", "arrival_s")

    def __init__(self, req_bytes: int, resp_bytes: int, arrival_s: float) -> None:
        self.req_bytes = req_bytes
        self.resp_bytes = resp_bytes
        self.arrival_s = arrival_s


class _FabricConn:
    """One client->server connection and its in-flight transfers."""

    __slots__ = (
        "client", "server", "c_flow", "s_flow", "state",
        "pending", "current", "send_remaining", "resp_remaining",
        "srv_expect", "srv_send_remaining",
    )

    def __init__(self, client: int, server: int) -> None:
        self.client = client
        self.server = server
        self.c_flow: Optional[int] = None
        self.s_flow: Optional[int] = None
        self.state = _CONNECTING
        #: Released-but-not-issued transfers.
        self.pending: Deque[_Transfer] = deque()
        self.current: Optional[_Transfer] = None
        self.send_remaining = 0
        self.resp_remaining = 0
        #: Server-side framing FIFO: [remaining, transfer].
        self.srv_expect: Deque[list] = deque()
        self.srv_send_remaining = 0

    @property
    def idle(self) -> bool:
        """Ready to issue the next transfer client-side.

        One-way pushes (resp=0) pipeline — the conn is idle again as
        soon as the request bytes are buffered; request/response
        transfers serialize per connection.
        """
        return self.current is None


class FabricLoadEngine:
    """Drives one :class:`FabricScenario` on one backend."""

    def __init__(
        self,
        scenario: FabricScenario,
        backend: str = "f4t",
        load_scale: float = 1.0,
        soft_config: Optional[SoftStackConfig] = None,
        **service_overrides: int,
    ) -> None:
        self.scenario = scenario
        self.spec = get_backend(backend)
        self.load_scale = load_scale
        self.fabric = SwitchFabric(scenario.num_hosts, config=scenario.switch)
        self.stacks: List[SoftStack] = [
            SoftStack(
                ip=self.fabric.host_ip(i),
                port=self.fabric.port(i),
                service=self.spec.service(**service_overrides),
                config=soft_config,
                name=f"h{i}",
                seed=scenario.seed,
            )
            for i in range(scenario.num_hosts)
        ]
        self.time_ps = 0
        self.conns: List[_FabricConn] = []
        self._conn_by_pair: Dict[Tuple[int, int], _FabricConn] = {}
        #: (server host, client ip, client ephemeral port) -> conn
        #: awaiting accept.  Client ip is part of the key because every
        #: stack draws ephemeral ports from the same range — two hosts'
        #: connections to one server can share a port number.
        self._awaiting: Dict[Tuple[int, int, int], _FabricConn] = {}
        self._round = 0
        #: Openloop schedule: (time_s, client, server, req_b, resp_b).
        self._schedule: List[Tuple[float, int, int, int, int]] = []
        self._release_index = 0
        self._outstanding = 0
        self._start_s = 0.0
        self.result = FabricResult(
            scenario=scenario.name,
            backend=self.spec.name,
            num_hosts=scenario.num_hosts,
            seed=scenario.seed,
            load_scale=load_scale,
            elapsed_s=0.0,
            finished=False,
            offered=0,
            completed=0,
            bytes_delivered=0,
        )
        #: Observability (repro.obs): a TraceBus, or None (free default).
        self.trace = None

    # ------------------------------------------------------------ schedule
    def _rng(self, stream: str) -> random.Random:
        scenario = self.scenario
        return random.Random(
            derive_seed(scenario.seed, f"fabric/{scenario.name}/{stream}")
        )

    def _build_schedule(self) -> None:
        scenario = self.scenario
        arrival = scenario.arrival.scaled(self.load_scale)
        times = arrival.times(self._rng("arrivals"), scenario.duration_s)
        pick_rng = self._rng("endpoints")
        req_rng = self._rng("request-sizes")
        resp_rng = self._rng("response-sizes")
        n = scenario.num_hosts
        zipf_cdf: Optional[List[float]] = None
        if scenario.server_select == "zipf":
            # Rank-frequency skew over the n-1 candidate servers: rank k
            # (0 = hottest) drawn with probability proportional to
            # (k+1)^-s.
            weights = [
                1.0 / (k + 1) ** scenario.zipf_s for k in range(n - 1)
            ]
            total = sum(weights)
            acc = 0.0
            zipf_cdf = []
            for w in weights:
                acc += w / total
                zipf_cdf.append(acc)
        for t in times:
            if zipf_cdf is None:
                server = 0
                client = 1 + pick_rng.randrange(n - 1)
            else:
                client = pick_rng.randrange(n)
                u = pick_rng.random()
                rank = len(zipf_cdf) - 1
                for k, threshold in enumerate(zipf_cdf):
                    if u <= threshold:
                        rank = k
                        break
                server = rank if rank < client else rank + 1
            self._schedule.append((
                t, client, server,
                max(1, scenario.request.sample(req_rng)),
                max(0, scenario.response.sample(resp_rng)),
            ))
        self.result.offered = len(self._schedule)

    # ----------------------------------------------------------- lifecycle
    def run(
        self, max_time_s: float = 0.25, setup_time_s: float = 0.05
    ) -> FabricResult:
        scenario = self.scenario
        if self.trace is not None:
            for stack in self.stacks:
                stack.trace = self.trace
                stack.trace_name = stack.name
            self.fabric.trace = self.trace
        for stack in self.stacks:
            stack.listen(scenario.server_port)
        if scenario.mode == "rounds":
            self.result.offered = scenario.rounds * (scenario.num_hosts - 1)
            for i in range(1, scenario.num_hosts):
                self._connect(client=0, server=i)
        else:
            self._build_schedule()
        if not self._run(until=self._pools_ready, max_time_s=setup_time_s):
            raise TimeoutError(
                f"{scenario.name}: fabric connection setup did not complete"
            )
        self._start_s = self.now_s
        finished = self._run(until=self._pump, max_time_s=max_time_s)
        result = self.result
        result.finished = finished
        result.elapsed_s = max(self.now_s - self._start_s, 1e-12)
        result.retransmits = sum(s.retransmits for s in self.stacks)
        result.timeouts = sum(s.timeouts for s in self.stacks)
        result.switch_drops = self.fabric.dropped
        result.ecn_marks = self.fabric.ecn_marked
        result.peak_buffer_bytes = self.fabric.peak_buffer_bytes
        return result

    @property
    def now_s(self) -> float:
        return self.time_ps / 1e12

    def _connect(self, client: int, server: int) -> _FabricConn:
        conn = _FabricConn(client, server)
        stack = self.stacks[client]
        conn.c_flow = stack.connect(
            self.fabric.host_ip(server), self.scenario.server_port
        )
        key = stack.flows[conn.c_flow].key
        self._awaiting[(server, key.src_ip, key.src_port)] = conn
        self.conns.append(conn)
        self._conn_by_pair[(client, server)] = conn
        return conn

    def _poll_accepts(self) -> None:
        port = self.scenario.server_port
        for index, stack in enumerate(self.stacks):
            while True:
                flow = stack.accept(port)
                if flow is None:
                    break
                record = stack.flows.get(flow)
                if record is None:
                    continue
                conn = self._awaiting.pop(
                    (index, record.key.dst_ip, record.key.dst_port), None
                )
                if conn is not None:
                    conn.s_flow = flow

    def _advance_connecting(self, conn: _FabricConn) -> None:
        if conn.state != _CONNECTING:
            return
        stack = self.stacks[conn.client]
        if (
            conn.s_flow is not None
            and stack.flow_state(conn.c_flow) is TcpState.ESTABLISHED
        ):
            conn.state = _READY

    def _pools_ready(self) -> bool:
        self._poll_accepts()
        for conn in self.conns:
            self._advance_connecting(conn)
            if conn.state == _CONNECTING:
                return False
        return True

    # ------------------------------------------------------------ the pump
    def _next_arrival_ps(self) -> Optional[int]:
        if self._release_index >= len(self._schedule):
            return None
        arrival_s = self._start_s + self._schedule[self._release_index][0]
        # +1: int() truncates, and landing one ps *before* the arrival
        # would stall the loop (the release check would still be in the
        # future, and no other event would advance time).
        return int(arrival_s * 1e12) + 1

    def _pump(self) -> bool:
        self._poll_accepts()
        for conn in self.conns:
            self._advance_connecting(conn)
        if self.scenario.mode == "rounds":
            self._pump_rounds()
        else:
            self._release_arrivals()
        for conn in self.conns:
            self._advance_conn(conn)
        return self._all_done()

    def _pump_rounds(self) -> None:
        scenario = self.scenario
        if self._round >= scenario.rounds or self._outstanding > 0:
            return
        for conn in self.conns:
            if conn.state != _READY:
                return
        # Barrier crossed: everyone finished the previous round.
        now_rel = self.now_s - self._start_s
        block = scenario.block_bytes
        for conn in self.conns:
            if scenario.reverse:
                # Outcast: host 0 pushes the block; delivery at the
                # receiver is completion (one-way stream).
                conn.pending.append(_Transfer(block, 0, now_rel))
            else:
                # Incast: a small request triggers the block response.
                conn.pending.append(
                    _Transfer(scenario.request_bytes, block, now_rel)
                )
            self._outstanding += 1
        if self.trace is not None:
            self.trace.emit(
                self.time_ps, "fabric", "driver", "round", -1,
                f"round={self._round} blocks={len(self.conns)}",
            )
        self._round += 1

    def _release_arrivals(self) -> None:
        now_rel = self.now_s - self._start_s
        schedule = self._schedule
        while self._release_index < len(schedule):
            t, client, server, req_b, resp_b = schedule[self._release_index]
            if t > now_rel:
                return
            self._release_index += 1
            self._outstanding += 1
            conn = self._conn_by_pair.get((client, server))
            if conn is None:
                conn = self._connect(client, server)
            conn.pending.append(_Transfer(req_b, resp_b, t))
            if self.trace is not None:
                self.trace.emit(
                    self.time_ps, "fabric", "driver", "arrival", -1,
                    f"h{client}->h{server} req={req_b} resp={resp_b}",
                )

    # ----------------------------------------------------- conn state steps
    def _advance_conn(self, conn: _FabricConn) -> None:
        if conn.state != _READY:
            return
        if conn.current is None and conn.pending:
            transfer = conn.pending.popleft()
            conn.current = transfer
            conn.send_remaining = transfer.req_bytes
            conn.resp_remaining = transfer.resp_bytes
            conn.srv_expect.append([transfer.req_bytes, transfer])
        client_stack = self.stacks[conn.client]
        if conn.send_remaining > 0:
            chunk = _ZEROS[: min(conn.send_remaining, len(_ZEROS))]
            conn.send_remaining -= client_stack.send_data(conn.c_flow, chunk)
        if (
            conn.current is not None
            and conn.send_remaining == 0
            and conn.current.resp_bytes == 0
        ):
            # One-way push fully buffered: free the conn to pipeline the
            # next transfer; completion is counted at the receiver.
            conn.current = None
        self._serve(conn)
        if conn.resp_remaining > 0 and conn.send_remaining == 0:
            self._pull_response(conn)

    def _serve(self, conn: _FabricConn) -> None:
        stack = self.stacks[conn.server]
        if conn.s_flow is None or conn.s_flow not in stack.flows:
            return
        readable = stack.readable(conn.s_flow)
        if readable > 0:
            received = len(stack.recv_data(conn.s_flow, readable))
            while received > 0 and conn.srv_expect:
                expect = conn.srv_expect[0]
                take = min(received, expect[0])
                expect[0] -= take
                received -= take
                if expect[0] > 0:
                    break
                transfer = expect[1]
                if transfer.resp_bytes > 0:
                    conn.srv_send_remaining += transfer.resp_bytes
                else:
                    # One-way push (outcast): delivery IS completion.
                    self._complete(conn, transfer, transfer.req_bytes)
                conn.srv_expect.popleft()
        if conn.srv_send_remaining > 0:
            chunk = _ZEROS[: min(conn.srv_send_remaining, len(_ZEROS))]
            conn.srv_send_remaining -= stack.send_data(conn.s_flow, chunk)

    def _pull_response(self, conn: _FabricConn) -> None:
        stack = self.stacks[conn.client]
        readable = stack.readable(conn.c_flow)
        if readable <= 0:
            return
        take = min(readable, conn.resp_remaining)
        conn.resp_remaining -= len(stack.recv_data(conn.c_flow, take))
        if conn.resp_remaining == 0 and conn.current is not None:
            transfer = conn.current
            conn.current = None
            self._complete(
                conn, transfer, transfer.req_bytes + transfer.resp_bytes
            )

    def _complete(
        self, conn: _FabricConn, transfer: _Transfer, delivered_bytes: int
    ) -> None:
        latency_s = (self.now_s - self._start_s) - transfer.arrival_s
        result = self.result
        result.latencies.record(max(latency_s, 0.0))
        result.bytes_delivered += delivered_bytes
        result.completed += 1
        self._outstanding -= 1
        if self.trace is not None:
            self.trace.emit(
                self.time_ps, "fabric", "driver", "complete",
                conn.c_flow if conn.c_flow is not None else -1,
                f"h{conn.client}->h{conn.server} bytes={delivered_bytes}",
            )

    def _all_done(self) -> bool:
        if self.scenario.mode == "rounds":
            return (
                self._round >= self.scenario.rounds
                and self._outstanding == 0
            )
        return (
            self._release_index >= len(self._schedule)
            and self._outstanding == 0
        )

    # ------------------------------------------------------------ run loop
    def _run(self, until: Callable[[], bool], max_time_s: float) -> bool:
        """Event-driven loop: settle every host at each event instant."""
        max_time_ps = self.time_ps + int(max_time_s * 1e12)
        stacks = self.stacks
        fabric = self.fabric
        while True:
            t = self.time_ps
            for stack in stacks:
                stack.now_ps = t
            for stack in stacks:
                stack.tick()
            if until():
                return True
            if t >= max_time_ps:
                return False
            candidates: List[int] = []
            nxt = fabric.next_event_ps()
            if nxt is not None:
                candidates.append(nxt)
            for stack in stacks:
                wakeup = stack.next_wakeup_ps()
                if wakeup is not None:
                    candidates.append(wakeup)
            arrival = self._next_arrival_ps()
            if arrival is not None:
                candidates.append(arrival)
            future = [c for c in candidates if c > t]
            if not future:
                return False  # stalled: nothing can change the predicate
            self.time_ps = min(min(future), max_time_ps)


def run_fabric(
    scenario: FabricScenario,
    backend: str = "f4t",
    load_scale: float = 1.0,
    trace=None,
    max_time_s: float = 0.25,
    **service_overrides: int,
) -> FabricResult:
    """One-call fabric run; see :class:`FabricLoadEngine`."""
    engine = FabricLoadEngine(
        scenario, backend=backend, load_scale=load_scale, **service_overrides
    )
    engine.trace = trace
    return engine.run(max_time_s=max_time_s)
