"""Fabric scenario presets: who talks to whom across the switch.

A :class:`FabricScenario` describes an N-host communication pattern in
one of two modes:

* ``rounds`` — barrier-synchronized block transfers, the classic
  partition/aggregate shape.  ``incast`` (N-1 servers answer one
  aggregator at once, fan-*in* congestion at its egress port) and
  ``outcast`` (one source blasts N-1 receivers, fan-*out* serialization
  at its uplink) are its two presets.
* ``openloop`` — scheduled request arrivals from :mod:`repro.traffic`'s
  seeded arrival processes and size distributions.  ``flash_crowd``
  ramps every client onto one server mid-run; ``zipf_fanout`` spreads
  requests over servers by Zipf popularity (CDN-style skew), so the hot
  server's port saturates first.

Every random decision — arrival times, sizes, client/server picks —
comes from :func:`~repro.net.wire.derive_seed` streams under the
scenario's single seed, so one seed replays one run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from ..traffic.arrivals import ArrivalProcess, FlashCrowd, Poisson
from ..traffic.sizes import Fixed, SizeDistribution, Zipf
from .switch import SwitchConfig


@dataclass(frozen=True)
class FabricScenario:
    """One N-host fabric communication pattern (see module docstring)."""

    name: str
    description: str = ""
    num_hosts: int = 8
    seed: int = 0
    #: ``rounds`` (barrier-synchronized blocks) or ``openloop``.
    mode: str = "rounds"
    # -- rounds mode --------------------------------------------------
    rounds: int = 3
    block_bytes: int = 128 * 1024
    request_bytes: int = 64
    #: False = incast (servers answer host 0); True = outcast (host 0
    #: pushes blocks outward).
    reverse: bool = False
    # -- openloop mode ------------------------------------------------
    arrival: Optional[ArrivalProcess] = None
    request: SizeDistribution = field(default_factory=lambda: Fixed(256))
    response: SizeDistribution = field(default_factory=lambda: Fixed(4096))
    duration_s: float = 400e-6
    #: ``fixed`` — every request targets host 0; ``zipf`` — the server
    #: is sampled by Zipf popularity over all hosts but the client.
    server_select: str = "fixed"
    zipf_s: float = 1.2
    # -- the switch ---------------------------------------------------
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    server_port: int = 9000

    def __post_init__(self) -> None:
        if self.num_hosts < 2:
            raise ValueError(f"{self.name}: need at least 2 hosts")
        if self.mode not in ("rounds", "openloop"):
            raise ValueError(f"{self.name}: unknown mode {self.mode!r}")
        if self.mode == "openloop" and self.arrival is None:
            raise ValueError(f"{self.name}: openloop mode needs arrival=")
        if self.server_select not in ("fixed", "zipf"):
            raise ValueError(
                f"{self.name}: unknown server_select {self.server_select!r}"
            )

    def with_seed(self, seed: int) -> "FabricScenario":
        return replace(self, seed=seed)

    def with_hosts(self, num_hosts: int) -> "FabricScenario":
        return replace(self, num_hosts=num_hosts)

    def describe(self) -> str:
        if self.mode == "rounds":
            shape = "outcast fan-out" if self.reverse else "incast fan-in"
            detail = (
                f"{self.rounds} rounds x {self.block_bytes} B blocks, {shape}"
            )
        else:
            detail = (
                f"{self.arrival.describe()}, req={self.request.describe()}, "
                f"resp={self.response.describe()}, "
                f"servers={self.server_select}"
            )
        return (
            f"{self.name}: {self.description or detail} "
            f"[{self.num_hosts} hosts, {self.switch.partition} buffer]"
        )


# ------------------------------------------------------------- the registry
FabricScenarioFactory = Callable[[], FabricScenario]

FABRIC_SCENARIO_FACTORIES: Dict[str, FabricScenarioFactory] = {}


def register_fabric_scenario(
    name: str,
) -> Callable[[FabricScenarioFactory], FabricScenarioFactory]:
    def decorate(factory: FabricScenarioFactory) -> FabricScenarioFactory:
        FABRIC_SCENARIO_FACTORIES[name] = factory
        return factory

    return decorate


def available_fabric_scenarios() -> Tuple[str, ...]:
    return tuple(sorted(FABRIC_SCENARIO_FACTORIES))


def get_fabric_scenario(
    name: str,
    num_hosts: Optional[int] = None,
    seed: Optional[int] = None,
) -> FabricScenario:
    try:
        factory = FABRIC_SCENARIO_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown fabric scenario {name!r}; available: "
            + ", ".join(available_fabric_scenarios())
        ) from None
    scenario = factory()
    if num_hosts is not None:
        scenario = scenario.with_hosts(num_hosts)
    if seed is not None:
        scenario = scenario.with_seed(seed)
    return scenario


# ------------------------------------------------------------- the presets
@register_fabric_scenario("incast")
def incast_scenario() -> FabricScenario:
    """Partition/aggregate fan-in: N-1 synchronized block responses."""
    return FabricScenario(
        name="incast",
        description=(
            "one aggregator requests a block from every server per round; "
            "all responses collide at its egress port"
        ),
        mode="rounds",
        rounds=3,
        block_bytes=128 * 1024,
        switch=SwitchConfig(ecn_threshold_bytes=96 * 1024),
    )


@register_fabric_scenario("outcast")
def outcast_scenario() -> FabricScenario:
    """The mirror image: one source pushes blocks to every receiver."""
    return FabricScenario(
        name="outcast",
        description=(
            "host 0 pushes a block to every receiver per round; its own "
            "uplink serializes the fan-out"
        ),
        mode="rounds",
        rounds=3,
        block_bytes=128 * 1024,
        reverse=True,
    )


@register_fabric_scenario("flash_crowd")
def flash_crowd_scenario() -> FabricScenario:
    """Every client ramps onto one server mid-run (hot-object spike)."""
    return FabricScenario(
        name="flash_crowd",
        description=(
            "open-loop requests from all clients to host 0, with a "
            "mid-run flash-crowd rate ramp"
        ),
        mode="openloop",
        arrival=FlashCrowd(
            base_rate=30e3,
            peak_multiplier=6.0,
            ramp_start_s=120e-6,
            ramp_duration_s=150e-6,
        ),
        request=Fixed(128),
        response=Fixed(8 * 1024),
        duration_s=400e-6,
        server_select="fixed",
        switch=SwitchConfig(ecn_threshold_bytes=128 * 1024),
    )


@register_fabric_scenario("zipf_fanout")
def zipf_fanout_scenario() -> FabricScenario:
    """CDN-style skew: Zipf server popularity, Zipf object sizes."""
    return FabricScenario(
        name="zipf_fanout",
        description=(
            "Poisson requests to Zipf-popular servers with heavy-tailed "
            "object sizes; the hot server's port saturates first"
        ),
        mode="openloop",
        arrival=Poisson(rate=60e3),
        request=Fixed(128),
        response=Zipf(s=1.1, minimum=1024, maximum=64 * 1024),
        duration_s=400e-6,
        server_select="zipf",
        zipf_s=1.2,
    )
