"""The ``OffloadBackend`` protocol and the backend registry.

The protocol is the duck-typed host-facing surface that
:class:`~repro.traffic.engine.LoadEngine`, the ``repro.apps`` presets
and the fabric driver all program against.  It was *extracted* from
:class:`~repro.engine.ftengine.FtEngine` — the F4T engine already
satisfies it unchanged, which is why refactoring the apps and traffic
layers onto the interface is provably non-behavioral (the pinned trace
fingerprints in ``tests/traffic/test_kernel_equivalence.py`` cannot
move).

Four registered backends:

=============  =======  ============  =====================================
name           kind     provenance    what runs
=============  =======  ============  =====================================
``f4t``        engine   paper-backed  the real cycle-driven FtEngine pair
``flextoe``    soft     model-backed  SoftStack + FlexToeService
``pno``        soft     model-backed  SoftStack + PnoService
``linux_stack``  soft   calibrated    SoftStack + LinuxService
=============  =======  ============  =====================================

``build_point_to_point`` is the single constructor the traffic layer
calls: it returns a testbed object (``engine_a``/``engine_b``/``wire``/
``run``/``now_s``/``cycle``) for any backend name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    Optional,
    Protocol,
    Tuple,
)

from ..net.link import LINK_100G, Link
from ..net.wire import Wire
from ..tcp.state_machine import TcpState
from .service import ServiceModel, service_for
from .softstack import SoftStackConfig, SoftTestbed


class OffloadBackend(Protocol):
    """Host-facing surface every offload engine exposes.

    ``flow`` handles are opaque ints; ``flows`` maps them to records
    whose ``.key`` is a :class:`~repro.tcp.segment.FlowKey` (the driver
    reads ephemeral ports off it to pair accepts with connects).
    ``host_messages`` carries :class:`~repro.engine.ftengine.
    EngineMessage` notifications ('connected', 'accepted', 'acked',
    'data', 'eof', 'closed', 'reset') that drive the load engine's
    dirty-set pump.
    """

    ip: int
    flows: Dict[int, Any]
    host_messages: Dict[int, Deque[Any]]

    def listen(self, port: int) -> None: ...

    def connect(self, dst_ip: int, dst_port: int) -> int: ...

    def accept(self, port: int) -> Optional[int]: ...

    def flow_state(self, flow_id: int) -> Optional[TcpState]: ...

    def send_data(self, flow_id: int, data: bytes) -> int: ...

    def readable(self, flow_id: int) -> int: ...

    def recv_data(self, flow_id: int, nbytes: int) -> bytes: ...

    def close_flow(self, flow_id: int) -> None: ...


@dataclass(frozen=True)
class BackendSpec:
    """One registered offload backend."""

    name: str
    title: str
    #: ``engine`` = the real cycle-driven FtEngine; ``soft`` = SoftStack
    #: over a per-backend service model.
    kind: str
    #: ``paper-backed`` (the reproduced artifact), ``calibrated``
    #: (constants measured against this repo's host calibration) or
    #: ``model-backed`` (published architecture, modeled timings).
    provenance: str
    description: str

    def service(self, **overrides: int) -> ServiceModel:
        """The fabric-host service model for this backend."""
        return service_for(self.name, **overrides)


_REGISTRY: Dict[str, BackendSpec] = {
    spec.name: spec
    for spec in (
        BackendSpec(
            name="f4t",
            title="F4T FPC engine",
            kind="engine",
            provenance="paper-backed",
            description=(
                "The reproduced F4T engine: parallel flow processing "
                "cores at 250 MHz, dual-memory TCBs, event coalescing. "
                "Point-to-point runs use the real cycle-driven FtEngine; "
                "N-host fabrics use its service model."
            ),
        ),
        BackendSpec(
            name="flextoe",
            title="FlexTOE-style pipeline parallelism",
            kind="soft",
            provenance="model-backed",
            description=(
                "One deep data-path pipeline, no per-flow cores: segment "
                "rate independent of flow count, at pipeline-depth "
                "latency."
            ),
        ),
        BackendSpec(
            name="pno",
            title="PnO-style off-path SmartNIC proxy",
            kind="soft",
            provenance="model-backed",
            description=(
                "TCP terminates on the SmartNIC SoC off the host's "
                "critical path; every segment pays the proxy hop."
            ),
        ),
        BackendSpec(
            name="linux_stack",
            title="Linux in-kernel stack baseline",
            kind="soft",
            provenance="calibrated",
            description=(
                "The kernel-stack baseline from this repo's calibrated "
                "per-send cycle costs (host.calibration)."
            ),
        ),
    )
}

#: Aliases accepted anywhere a backend name is: the traffic layer's
#: historical default label maps to the real engine.
_ALIASES = {"functional": "f4t"}


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> BackendSpec:
    spec = _REGISTRY.get(_ALIASES.get(name, name))
    if spec is None:
        raise KeyError(
            f"unknown backend {name!r}; available: "
            + ", ".join(available_backends())
        )
    return spec


def build_point_to_point(
    backend: str = "f4t",
    link: Link = LINK_100G,
    drop_probability: float = 0.0,
    reorder_probability: float = 0.0,
    reorder_delay_us: float = 10.0,
    seed: int = 0,
    soft_config: Optional[SoftStackConfig] = None,
    **service_overrides: int,
):
    """Build a two-host point-to-point testbed for any backend.

    Returns :class:`~repro.engine.testbed.Testbed` for ``f4t`` (the real
    engine, byte-identical to constructing it directly) and
    :class:`~repro.fabric.softstack.SoftTestbed` for the soft backends.
    Both satisfy the same testbed surface, so callers never branch.
    """
    spec = get_backend(backend)
    if spec.kind == "engine":
        if service_overrides:
            raise ValueError(
                "service model overrides only apply to soft backends; "
                "configure the f4t engine via FtEngineConfig"
            )
        impaired = drop_probability > 0 or reorder_probability > 0
        wire = (
            Wire.impaired(
                seed,
                drop_probability=drop_probability,
                reorder_probability=reorder_probability,
                reorder_delay_us=reorder_delay_us,
                link=link,
            )
            if impaired
            else Wire(link=link)
        )
        from ..engine.testbed import Testbed

        return Testbed(wire=wire, link=link)
    if reorder_probability > 0:
        raise ValueError(
            f"backend {spec.name!r} does not model reordering; "
            "reorder impairments require the f4t engine backend"
        )
    return SoftTestbed(
        service_factory=lambda: spec.service(**service_overrides),
        link=link,
        drop_probability=drop_probability,
        seed=seed,
        config=soft_config,
        backend=spec.name,
    )
