"""Head-to-head backend comparison over one fabric scenario.

``sweep_backends`` runs the same seeded scenario once per backend and
collects the results into a :class:`BackendComparison` — the table
``python -m repro fabric sweep`` prints and ``repro.lab`` persists.
Each backend run is fully independent (its own switch, stacks and RNG
streams re-derived from the one seed), so the comparison is
deterministic: same seed, same CSV, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from .backend import available_backends, get_backend
from .engine import FabricResult, run_fabric
from .scenarios import FabricScenario, get_fabric_scenario


@dataclass
class BackendComparison:
    """Per-backend results for one scenario, requested order preserved."""

    scenario: str
    num_hosts: int
    seed: int
    load_scale: float
    results: List[FabricResult]

    _COLUMNS = [
        "backend", "provenance", "completed", "goodput_gbps",
        "p50_us", "p99_us", "retransmits", "switch_drops", "ecn_marks",
    ]

    def rows(self) -> List[List[object]]:
        rows: List[List[object]] = []
        for result in self.results:
            spec = get_backend(result.backend)
            rows.append([
                result.backend,
                spec.provenance,
                result.completed,
                result.goodput_gbps,
                result.p50_s * 1e6,
                result.p99_s * 1e6,
                result.retransmits,
                result.switch_drops,
                result.ecn_marks,
            ])
        return rows

    def table(self) -> str:
        from ..analysis.reporting import render_table

        return render_table(self._COLUMNS, self.rows())

    def to_csv(self) -> str:
        from ..analysis.reporting import format_value

        header = ["scenario", "num_hosts", "seed", "load_scale"] + self._COLUMNS
        lines = [",".join(header)]
        for row in self.rows():
            prefix = [
                self.scenario, str(self.num_hosts), str(self.seed),
                format_value(self.load_scale),
            ]
            lines.append(",".join(prefix + [format_value(v) for v in row]))
        return "\n".join(lines) + "\n"

    def summary(self) -> str:
        lines = [
            f"{self.scenario}: {self.num_hosts} hosts, seed {self.seed}, "
            f"load x{self.load_scale:g}"
        ]
        lines += [f"  {result.summary()}" for result in self.results]
        return "\n".join(lines)


def sweep_backends(
    scenario: Union[str, FabricScenario],
    backends: Optional[Sequence[str]] = None,
    num_hosts: Optional[int] = None,
    seed: Optional[int] = None,
    load_scale: float = 1.0,
    max_time_s: float = 0.25,
) -> BackendComparison:
    """Run one scenario across backends; see :class:`BackendComparison`."""
    if isinstance(scenario, str):
        scenario = get_fabric_scenario(scenario, num_hosts=num_hosts, seed=seed)
    else:
        if num_hosts is not None:
            scenario = scenario.with_hosts(num_hosts)
        if seed is not None:
            scenario = scenario.with_seed(seed)
    names = list(backends) if backends else list(available_backends())
    results = [
        run_fabric(
            scenario, backend=name, load_scale=load_scale,
            max_time_s=max_time_s,
        )
        for name in names
    ]
    return BackendComparison(
        scenario=scenario.name,
        num_hosts=scenario.num_hosts,
        seed=scenario.seed,
        load_scale=load_scale,
        results=results,
    )
