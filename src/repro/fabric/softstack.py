"""A functional soft TCP endpoint implementing the backend protocol.

:class:`SoftStack` is the shared transport under the FlexTOE, PnO and
linux_stack backends (and under *every* backend in N-host fabrics): a
byte-counting reliable stream — handshake, cumulative acks, sliding
window with NewReno-style loss recovery, ECN echo, FIN teardown — whose
NIC-side timing comes entirely from a pluggable
:class:`~repro.fabric.service.ServiceModel`.  It exposes the exact
host-facing surface of :class:`~repro.engine.ftengine.FtEngine`
(``listen/connect/accept/send_data/readable/recv_data/close_flow/
flow_state/flows/host_messages``), so :class:`~repro.traffic.engine.
LoadEngine` and the ``repro.apps`` presets drive it unchanged.

Payload content is not modelled — only byte counts move (the traffic
harness frames requests by size and sends zeros anyway); ``recv_data``
returns zero bytes of the requested length.  Sequence bookkeeping uses
unbounded cumulative byte offsets starting at zero, not 32-bit wrapping
sequence numbers, so ordered comparisons are exact without modular
arithmetic.

All timestamps are integer picoseconds end to end (simlint F4T007
covers this package); the only randomness is the optional seeded drop
impairment on :class:`SoftWire`.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..engine.ftengine import EngineMessage
from ..net.link import LINK_100G, PER_PACKET_OVERHEAD, Link
from ..net.wire import derive_seed
from ..tcp.segment import FlowKey, ip_from_string
from ..tcp.state_machine import TcpState
from .service import ServiceModel

#: Engine-period compatibility constant: ``cycle`` properties below are
#: derived from integer picoseconds at the F4T 250 MHz period.
_PERIOD_PS = 4_000


@dataclass
class SoftStackConfig:
    """Transport knobs shared by every soft backend."""

    mss: int = 1460
    send_buffer: int = 1 << 18
    recv_buffer: int = 1 << 18
    init_cwnd_segments: int = 10
    #: Retransmission timeout floor (int ps); doubles per backoff.
    rto_ps: int = 50_000_000
    #: Handshake (SYN/SYN-ACK) retransmit interval (int ps).
    handshake_rto_ps: int = 50_000_000
    #: ECN response hold-off (int ps): after halving on an echoed CE
    #: mark, further echoes are ignored for this long (plus a seeded
    #: jitter of up to 1/8th), so one congestion round trip maps to one
    #: multiplicative decrease rather than a collapse to the floor.
    ecn_recovery_ps: int = 10_000_000


class FabricPacket:
    """One segment on a fabric link; sizes and offsets only, no bytes."""

    __slots__ = (
        "kind", "key", "offset", "ack_to", "payload_bytes", "window",
        "ce", "ece",
    )

    def __init__(
        self,
        kind: str,
        key: FlowKey,
        offset: int = 0,
        ack_to: int = 0,
        payload_bytes: int = 0,
        window: int = 0,
        ece: bool = False,
    ) -> None:
        self.kind = kind          # 'syn' | 'synack' | 'data' | 'ack' | 'fin'
        self.key = key            # sender's view: src = sender
        self.offset = offset      # cumulative byte offset (data/fin)
        self.ack_to = ack_to      # cumulative bytes acked by the sender
        self.payload_bytes = payload_bytes
        self.window = window      # advertised receive window
        self.ce = False           # congestion-experienced (set by switch)
        self.ece = ece            # receiver's CE echo

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + PER_PACKET_OVERHEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FabricPacket({self.kind}, {self.key}, off={self.offset}, "
            f"ack={self.ack_to}, {self.payload_bytes}B)"
        )


class _SoftFlow:
    """Per-connection state: both transmit and receive directions."""

    __slots__ = (
        "flow_id", "key", "slot", "state", "listen_port",
        # transmit side (cumulative byte offsets from 0)
        "app_written", "flow_acked", "next_to_send",
        "cwnd", "ssthresh", "peer_window", "dup_acks", "recover_mark",
        "ecn_hold_until_ps", "rto_deadline_ps", "rto_backoff",
        "timer_armed_ps",
        "fin_queued", "fin_sent", "fin_acked",
        # receive side
        "contiguous", "delivered", "ooo", "peer_fin_at", "ce_pending",
        "eof_posted",
        # handshake
        "hs_deadline_ps",
    )

    def __init__(
        self, flow_id: int, key: FlowKey, slot: int, state: TcpState,
        config: SoftStackConfig,
    ) -> None:
        self.flow_id = flow_id
        self.key = key
        self.slot = slot
        self.state = state
        self.listen_port: Optional[int] = None
        self.app_written = 0
        self.flow_acked = 0
        self.next_to_send = 0
        self.cwnd = config.init_cwnd_segments * config.mss
        self.ssthresh = config.send_buffer
        self.peer_window = config.recv_buffer
        self.dup_acks = 0
        self.recover_mark = 0
        self.ecn_hold_until_ps = 0
        self.rto_deadline_ps = 0          # 0 = timer off
        self.rto_backoff = 0
        self.timer_armed_ps = 0           # earliest heap entry, 0 = none
        self.fin_queued = False
        self.fin_sent = False
        self.fin_acked = False
        self.contiguous = 0
        self.delivered = 0
        self.ooo: List[Tuple[int, int]] = []  # sorted disjoint (start, end)
        self.peer_fin_at = -1
        self.ce_pending = False
        self.eof_posted = False
        self.hs_deadline_ps = 0


class _IntDirection:
    """One direction of a point-to-point soft link, integer-ps timed."""

    def __init__(self, link: Link, drop_rng: Optional[random.Random]) -> None:
        bits_per_s = int(link.bandwidth_gbps * 1e9)
        self._bits_per_s = bits_per_s
        self._prop_ps = int(link.propagation_delay_us * 10**6)
        self._drop_rng = drop_rng
        self.drop_probability = 0.0
        self.next_free_ps = 0
        self._in_flight: List[Tuple[int, int, FabricPacket]] = []
        self._sequence = 0
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0

    def serialization_ps(self, wire_bytes: int) -> int:
        return wire_bytes * 8 * 10**12 // self._bits_per_s

    def transmit(self, packet: FabricPacket, now_ps: int) -> None:
        if (
            self._drop_rng is not None
            and packet.kind == "data"
            and self._drop_rng.random() < self.drop_probability
        ):
            self.frames_dropped += 1
            return
        start = now_ps if now_ps > self.next_free_ps else self.next_free_ps
        self.next_free_ps = start + self.serialization_ps(packet.wire_bytes)
        arrival = self.next_free_ps + self._prop_ps
        self._sequence += 1
        heapq.heappush(self._in_flight, (arrival, self._sequence, packet))
        self.frames_sent += 1
        self.bytes_sent += packet.wire_bytes

    def deliver_due(self, now_ps: int) -> List[FabricPacket]:
        due: List[FabricPacket] = []
        while self._in_flight and self._in_flight[0][0] <= now_ps:
            due.append(heapq.heappop(self._in_flight)[2])
        return due

    def next_arrival_ps(self) -> Optional[int]:
        return self._in_flight[0][0] if self._in_flight else None

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


class SoftPort:
    """One endpoint's handle on a soft link (same shape as WirePort)."""

    def __init__(self, outbound: _IntDirection, inbound: _IntDirection) -> None:
        self._outbound = outbound
        self._inbound = inbound

    def send(self, packet: FabricPacket, now_ps: int) -> None:
        self._outbound.transmit(packet, now_ps)

    def poll(self, now_ps: int) -> List[FabricPacket]:
        return self._inbound.deliver_due(now_ps)

    def next_arrival_ps(self) -> Optional[int]:
        return self._inbound.next_arrival_ps()

    @property
    def pending(self) -> int:
        return self._inbound.in_flight + self._outbound.in_flight


class SoftWire:
    """A duplex point-to-point soft link with optional seeded loss."""

    def __init__(
        self,
        link: Link = LINK_100G,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.link = link
        self._ab = _IntDirection(
            link,
            random.Random(derive_seed(seed, "soft-drop-a2b"))
            if drop_probability > 0 else None,
        )
        self._ba = _IntDirection(
            link,
            random.Random(derive_seed(seed, "soft-drop-b2a"))
            if drop_probability > 0 else None,
        )
        self._ab.drop_probability = drop_probability
        self._ba.drop_probability = drop_probability
        self.port_a = SoftPort(outbound=self._ab, inbound=self._ba)
        self.port_b = SoftPort(outbound=self._ba, inbound=self._ab)

    @property
    def in_flight(self) -> int:
        return self._ab.in_flight + self._ba.in_flight

    @property
    def frames_sent(self) -> int:
        return self._ab.frames_sent + self._ba.frames_sent

    @property
    def frames_dropped(self) -> int:
        return self._ab.frames_dropped + self._ba.frames_dropped

    @property
    def bytes_sent(self) -> int:
        return self._ab.bytes_sent + self._ba.bytes_sent

    def next_arrival_ps(self) -> Optional[int]:
        times = [
            t
            for t in (self._ab.next_arrival_ps(), self._ba.next_arrival_ps())
            if t is not None
        ]
        return min(times) if times else None


class SoftStack:
    """One host's soft offload engine: transport + service model."""

    def __init__(
        self,
        ip: int,
        port,
        service: ServiceModel,
        config: Optional[SoftStackConfig] = None,
        name: str = "soft",
        seed: int = 0,
    ) -> None:
        self.ip = ip
        self.port = port
        self.service = service
        self.config = config or SoftStackConfig()
        self.name = name
        self.now_ps = 0  # the driving loop sets this before tick()
        #: The only RNG: seeded jitter on the ECN recovery hold-off,
        #: derived per host name so every stack draws its own stream.
        self._ecn_rng = random.Random(derive_seed(seed, f"ecn/{name}"))
        self.flows: Dict[int, _SoftFlow] = {}
        #: Lazy (deadline_ps, flow_id) min-heap over hs/rto deadlines;
        #: see ``_arm``.  Keeps ``next_wakeup_ps``/``_expire_timers``
        #: O(log n) instead of O(flows) — the difference between a
        #: 2-host testbed and a million-flow shard cell.
        self._timers: List[Tuple[int, int]] = []
        self.host_messages: Dict[int, Deque[EngineMessage]] = {0: deque()}
        #: Bumped on every host-queue mutation, mirroring
        #: ``FtEngine.msg_epoch`` so pollers can skip unchanged queues.
        self.msg_epoch = 0
        self._listening: Set[int] = set()
        self._accept_queues: Dict[int, Deque[int]] = {}
        self._by_key: Dict[FlowKey, int] = {}
        self._next_flow_id = 0
        self._next_port = 49152
        self._free_slots: List[int] = []
        self._next_slot = 0
        # Counters surfaced into fabric results and obs samples.
        self.packets_sent = 0
        self.packets_received = 0
        self.retransmits = 0
        self.timeouts = 0
        self.ecn_echoes = 0
        #: Observability (repro.obs): a TraceBus, or None (free default).
        self.trace = None
        self.trace_name = name

    # ------------------------------------------------------------- plumbing
    def _post(self, kind: str, flow_id: int, value: int = 0) -> None:
        self.host_messages[0].append(EngineMessage(kind, flow_id, value))
        self.msg_epoch += 1

    def _alloc_slot(self) -> int:
        if self._free_slots:
            return heapq.heappop(self._free_slots)
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _emit(self, packet: FabricPacket, at_ps: int) -> None:
        self.port.send(packet, at_ps)
        self.packets_sent += 1

    def _send_segment(self, flow: _SoftFlow, packet: FabricPacket) -> int:
        """Run one outbound segment through the service model; returns
        the instant it reached the wire."""
        at = self.service.tx_ready_ps(
            self.now_ps, flow.slot, packet.payload_bytes
        )
        self._emit(packet, at)
        if self.trace is not None:
            self.trace.emit(
                at, "fabric", self.trace_name, f"tx-{packet.kind}",
                flow.flow_id, f"off={packet.offset} n={packet.payload_bytes}",
            )
        return at

    def _rwnd(self, flow: _SoftFlow) -> int:
        used = flow.contiguous - flow.delivered
        free = self.config.recv_buffer - used
        return free if free > 0 else 0

    def _arm(self, flow: _SoftFlow) -> None:
        """Index the flow's earliest live deadline in the timer heap.

        Lazy discipline: at most one *tracked* entry per flow (its
        earliest pushed instant, ``timer_armed_ps``).  Re-arming later
        than the tracked entry pushes nothing — the stale entry pops at
        its old instant, finds nothing due, and re-indexes at the true
        deadline.  So arming stays O(log n) and the heap stays
        proportional to the flow count, not the ack count.
        """
        hs, rto = flow.hs_deadline_ps, flow.rto_deadline_ps
        if hs and rto:
            deadline = hs if hs < rto else rto
        else:
            deadline = hs or rto
        if deadline <= 0:
            return
        if flow.timer_armed_ps == 0 or deadline < flow.timer_armed_ps:
            flow.timer_armed_ps = deadline
            heapq.heappush(self._timers, (deadline, flow.flow_id))

    # ----------------------------------------------------- host-facing API
    def listen(self, port: int) -> None:
        self._listening.add(port)
        self._accept_queues.setdefault(port, deque())

    def connect(self, dst_ip: int, dst_port: int) -> int:
        src_port = self._next_port
        self._next_port += 1
        key = FlowKey(self.ip, src_port, dst_ip, dst_port)
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        flow = _SoftFlow(
            flow_id, key, self._alloc_slot(), TcpState.SYN_SENT, self.config
        )
        self.flows[flow_id] = flow
        self._by_key[key] = flow_id
        at = self._send_segment(flow, FabricPacket("syn", key))
        flow.hs_deadline_ps = at + self.config.handshake_rto_ps
        self._arm(flow)
        return flow_id

    def accept(self, port: int, thread_id: int = 0) -> Optional[int]:
        queue = self._accept_queues.get(port)
        if not queue:
            return None
        return queue.popleft()

    def flow_state(self, flow_id: int) -> Optional[TcpState]:
        flow = self.flows.get(flow_id)
        return flow.state if flow is not None else None

    def send_data(self, flow_id: int, data: bytes) -> int:
        flow = self.flows.get(flow_id)
        if flow is None or flow.fin_queued:
            return 0
        room = self.config.send_buffer - (flow.app_written - flow.flow_acked)
        accepted = min(len(data), room) if room > 0 else 0
        if accepted <= 0:
            return 0
        flow.app_written += accepted
        if flow.state is TcpState.ESTABLISHED:
            self._pump_flow(flow)
        return accepted

    def readable(self, flow_id: int) -> int:
        flow = self.flows.get(flow_id)
        if flow is None:
            return 0
        return flow.contiguous - flow.delivered

    def recv_data(self, flow_id: int, nbytes: int) -> bytes:
        flow = self.flows.get(flow_id)
        if flow is None:
            return b""
        take = min(nbytes, flow.contiguous - flow.delivered)
        if take <= 0:
            return b""
        flow.delivered += take
        return bytes(take)

    def close_flow(self, flow_id: int) -> None:
        flow = self.flows.get(flow_id)
        if flow is None or flow.fin_queued:
            return
        flow.fin_queued = True
        if flow.state is TcpState.ESTABLISHED:
            self._pump_flow(flow)

    def drain_host_messages(self, thread_id: int = 0) -> List[EngineMessage]:
        queue = self.host_messages.get(thread_id)
        if not queue:
            return []
        drained = list(queue)
        queue.clear()
        self.msg_epoch += 1
        return drained

    # ------------------------------------------------------------ the tick
    def busy(self) -> bool:
        return any(
            flow.next_to_send < flow.app_written
            or flow.flow_acked < flow.next_to_send
            for flow in self.flows.values()
        )

    def next_wakeup_ps(self) -> Optional[int]:
        timers = self._timers
        while timers:
            deadline, flow_id = timers[0]
            flow = self.flows.get(flow_id)
            actual = 0
            if flow is not None:
                hs, rto = flow.hs_deadline_ps, flow.rto_deadline_ps
                if hs and rto:
                    actual = hs if hs < rto else rto
                else:
                    actual = hs or rto
            if actual == deadline:
                return deadline
            # Dead flow or superseded deadline: drop the entry and, if
            # the flow still has a live deadline, re-index it there.
            heapq.heappop(timers)
            if flow is not None:
                if flow.timer_armed_ps == deadline:
                    flow.timer_armed_ps = 0
                self._arm(flow)
        return None

    def tick(self) -> None:
        now = self.now_ps
        for packet in self.port.poll(now):
            self._receive(packet, now)
        self._expire_timers(now)

    # ------------------------------------------------------- the data path
    def _pump_flow(self, flow: _SoftFlow) -> None:
        """Send whatever the window allows; arm the retransmit timer."""
        config = self.config
        window = flow.cwnd if flow.cwnd < flow.peer_window else flow.peer_window
        sent_any = False
        last_at = 0
        while flow.next_to_send < flow.app_written:
            flight = flow.next_to_send - flow.flow_acked
            if flight >= window:
                break
            chunk = min(
                config.mss, flow.app_written - flow.next_to_send,
                window - flight,
            )
            last_at = self._send_segment(
                flow,
                FabricPacket(
                    "data", flow.key, offset=flow.next_to_send,
                    payload_bytes=chunk, ack_to=flow.contiguous,
                    window=self._rwnd(flow),
                ),
            )
            flow.next_to_send += chunk
            sent_any = True
        if (
            flow.fin_queued
            and not flow.fin_sent
            and flow.next_to_send == flow.app_written
        ):
            last_at = self._send_segment(
                flow, FabricPacket("fin", flow.key, offset=flow.app_written)
            )
            flow.fin_sent = True
            sent_any = True
        if sent_any and flow.rto_deadline_ps == 0:
            flow.rto_deadline_ps = last_at + (
                config.rto_ps << flow.rto_backoff
            )
            self._arm(flow)

    def _retransmit_from(self, flow: _SoftFlow, go_back: bool) -> None:
        """Resend from the cumulative ack point (one MSS, or go-back-N)."""
        self.retransmits += 1
        if self.trace is not None:
            self.trace.emit(
                self.now_ps, "fabric", self.trace_name, "retx",
                flow.flow_id, f"from={flow.flow_acked} gbn={int(go_back)}",
            )
        if go_back:
            flow.next_to_send = flow.flow_acked
            flow.fin_sent = False
            self._pump_flow(flow)
            return
        chunk = min(
            self.config.mss, flow.app_written - flow.flow_acked
        )
        if chunk > 0:
            self._send_segment(
                flow,
                FabricPacket(
                    "data", flow.key, offset=flow.flow_acked,
                    payload_bytes=chunk, ack_to=flow.contiguous,
                    window=self._rwnd(flow),
                ),
            )
        elif flow.fin_sent and not flow.fin_acked:
            self._send_segment(
                flow, FabricPacket("fin", flow.key, offset=flow.app_written)
            )

    def _expire_timers(self, now: int) -> None:
        timers = self._timers
        while timers and timers[0][0] <= now:
            deadline, flow_id = heapq.heappop(timers)
            flow = self.flows.get(flow_id)
            if flow is None:
                continue
            if flow.timer_armed_ps == deadline:
                flow.timer_armed_ps = 0
            if flow.hs_deadline_ps and now >= flow.hs_deadline_ps:
                if flow.state is TcpState.SYN_SENT:
                    at = self._send_segment(flow, FabricPacket("syn", flow.key))
                    flow.hs_deadline_ps = at + self.config.handshake_rto_ps
                elif flow.state is TcpState.SYN_RECEIVED:
                    at = self._send_segment(
                        flow, FabricPacket("synack", flow.key)
                    )
                    flow.hs_deadline_ps = at + self.config.handshake_rto_ps
                else:
                    flow.hs_deadline_ps = 0
            if flow.rto_deadline_ps and now >= flow.rto_deadline_ps:
                outstanding = (
                    flow.flow_acked < flow.next_to_send
                    or (flow.fin_sent and not flow.fin_acked)
                )
                if not outstanding:
                    flow.rto_deadline_ps = 0
                else:
                    self.timeouts += 1
                    flight = flow.next_to_send - flow.flow_acked
                    half = flight // 2
                    flow.ssthresh = max(half, 2 * self.config.mss)
                    flow.cwnd = self.config.mss
                    if flow.rto_backoff < 6:
                        flow.rto_backoff += 1
                    flow.rto_deadline_ps = now + (
                        self.config.rto_ps << flow.rto_backoff
                    )
                    self._retransmit_from(flow, go_back=True)
            self._arm(flow)

    # ------------------------------------------------------------- receive
    def _receive(self, packet: FabricPacket, now: int) -> None:
        self.packets_received += 1
        kind = packet.kind
        if kind == "syn":
            self._on_syn(packet)
            return
        # Everything else belongs to an existing flow, looked up by the
        # local view of the 4-tuple (the peer's key reversed).
        flow_id = self._by_key.get(packet.key.reversed())
        if flow_id is None:
            return  # late segment for a torn-down flow
        flow = self.flows[flow_id]
        if self.trace is not None:
            self.trace.emit(
                now, "fabric", self.trace_name, f"rx-{kind}",
                flow_id, f"off={packet.offset} n={packet.payload_bytes}",
            )
        if kind == "synack":
            self._on_synack(flow)
            return
        if flow.state is TcpState.SYN_RECEIVED:
            # Handshake ACK (possibly carrying data): promote + enqueue
            # on the accept queue before normal processing.
            flow.state = TcpState.ESTABLISHED
            flow.hs_deadline_ps = 0
            port = flow.listen_port
            if port is not None:
                self._accept_queues.setdefault(port, deque()).append(flow_id)
            self._post("accepted", flow_id)
        if kind == "data":
            self._on_data(flow, packet, now)
        elif kind == "ack":
            self._on_ack(flow, packet, now)
        elif kind == "fin":
            self._on_fin(flow, packet, now)
        self._maybe_teardown(flow)

    def _on_syn(self, packet: FabricPacket) -> None:
        if packet.key.dst_port not in self._listening:
            return
        key = packet.key.reversed()  # our view: src = us
        existing = self._by_key.get(key)
        if existing is not None:
            flow = self.flows[existing]  # duplicate SYN: re-answer
        else:
            flow_id = self._next_flow_id
            self._next_flow_id += 1
            flow = _SoftFlow(
                flow_id, key, self._alloc_slot(), TcpState.SYN_RECEIVED,
                self.config,
            )
            flow.listen_port = packet.key.dst_port
            self.flows[flow_id] = flow
            self._by_key[key] = flow_id
        at = self._send_segment(flow, FabricPacket("synack", flow.key))
        flow.hs_deadline_ps = at + self.config.handshake_rto_ps
        self._arm(flow)

    def _on_synack(self, flow: _SoftFlow) -> None:
        if flow.state is not TcpState.SYN_SENT:
            return  # duplicate SYN-ACK
        flow.state = TcpState.ESTABLISHED
        flow.hs_deadline_ps = 0
        self._post("connected", flow.flow_id)
        self._send_segment(
            flow,
            FabricPacket(
                "ack", flow.key, ack_to=0, window=self._rwnd(flow)
            ),
        )
        self._pump_flow(flow)

    def _on_data(self, flow: _SoftFlow, packet: FabricPacket, now: int) -> None:
        if packet.ce:
            flow.ce_pending = True
        start, end = packet.offset, packet.offset + packet.payload_bytes
        before = flow.contiguous
        if start <= flow.contiguous:
            if end > flow.contiguous:
                flow.contiguous = end
            # Absorb any out-of-order runs now made contiguous.
            merged: List[Tuple[int, int]] = []
            for lo, hi in flow.ooo:
                if lo <= flow.contiguous:
                    if hi > flow.contiguous:
                        flow.contiguous = hi
                else:
                    merged.append((lo, hi))
            flow.ooo = merged
        else:
            self._insert_ooo(flow, start, end)
        if flow.contiguous > before:
            self._post("data", flow.flow_id, flow.contiguous - before)
        self._ack_now(flow)

    def _insert_ooo(self, flow: _SoftFlow, start: int, end: int) -> None:
        runs = flow.ooo
        runs.append((start, end))
        runs.sort()
        merged = [runs[0]]
        for lo, hi in runs[1:]:
            last_lo, last_hi = merged[-1]
            if lo <= last_hi:
                merged[-1] = (last_lo, max(last_hi, hi))
            else:
                merged.append((lo, hi))
        flow.ooo = merged

    def _ack_now(self, flow: _SoftFlow) -> None:
        ack_to = flow.contiguous
        if (
            flow.peer_fin_at >= 0
            and flow.contiguous >= flow.peer_fin_at
        ):
            ack_to = flow.peer_fin_at + 1  # the FIN's virtual byte
        self._send_segment(
            flow,
            FabricPacket(
                "ack", flow.key, ack_to=ack_to,
                window=self._rwnd(flow), ece=flow.ce_pending,
            ),
        )
        flow.ce_pending = False

    def _on_ack(self, flow: _SoftFlow, packet: FabricPacket, now: int) -> None:
        config = self.config
        flow.peer_window = max(packet.window, config.mss)
        if packet.ece and now >= flow.ecn_hold_until_ps:
            # One multiplicative decrease per congestion round trip:
            # halve, then hold off for a seeded recovery interval so a
            # burst of echoed marks maps to one response, and the
            # jitter desynchronizes the senders of an incast instead
            # of letting them all re-open their windows in lockstep.
            half = flow.cwnd // 2
            flow.cwnd = max(config.mss, half)
            flow.ssthresh = flow.cwnd
            hold = config.ecn_recovery_ps
            hold += self._ecn_rng.randrange(hold // 8 + 1)
            flow.ecn_hold_until_ps = now + hold
            self.ecn_echoes += 1
        fin_point = flow.app_written + 1 if flow.fin_sent else -1
        if packet.ack_to == fin_point and not flow.fin_acked:
            flow.fin_acked = True
            flow.flow_acked = flow.app_written
            flow.rto_deadline_ps = 0
            return
        advanced = packet.ack_to - flow.flow_acked
        if advanced > 0:
            flow.flow_acked = packet.ack_to
            flow.dup_acks = 0
            flow.rto_backoff = 0
            outstanding = (
                flow.flow_acked < flow.next_to_send
                or (flow.fin_sent and not flow.fin_acked)
            )
            flow.rto_deadline_ps = (
                now + config.rto_ps if outstanding else 0
            )
            if outstanding:
                self._arm(flow)
            if flow.next_to_send < flow.flow_acked:
                flow.next_to_send = flow.flow_acked
            # Congestion window growth: slow start, then ~MSS per RTT.
            if flow.cwnd < flow.ssthresh:
                flow.cwnd += min(advanced, config.mss)
            else:
                flow.cwnd += max(1, config.mss * config.mss // flow.cwnd)
            if flow.cwnd > config.send_buffer:
                flow.cwnd = config.send_buffer
            self._post("acked", flow.flow_id, advanced)
            self._pump_flow(flow)
        elif (
            packet.ack_to == flow.flow_acked
            and flow.next_to_send > flow.flow_acked
        ):
            flow.dup_acks += 1
            if flow.dup_acks == 3 and flow.flow_acked >= flow.recover_mark:
                half = (flow.next_to_send - flow.flow_acked) // 2
                flow.ssthresh = max(half, 2 * config.mss)
                flow.cwnd = flow.ssthresh
                flow.recover_mark = flow.next_to_send
                self._retransmit_from(flow, go_back=False)

    def _on_fin(self, flow: _SoftFlow, packet: FabricPacket, now: int) -> None:
        flow.peer_fin_at = packet.offset
        self._ack_now(flow)

    def _maybe_teardown(self, flow: _SoftFlow) -> None:
        peer_done = (
            flow.peer_fin_at >= 0 and flow.contiguous >= flow.peer_fin_at
        )
        if peer_done and not flow.eof_posted:
            flow.eof_posted = True
            self._post("eof", flow.flow_id)
        if peer_done and flow.fin_acked:
            flow.state = TcpState.CLOSED
            del self.flows[flow.flow_id]
            self._by_key.pop(flow.key, None)
            heapq.heappush(self._free_slots, flow.slot)
            self._post("closed", flow.flow_id)
            if self.trace is not None:
                self.trace.emit(
                    self.now_ps, "fabric", self.trace_name, "closed",
                    flow.flow_id, "teardown complete",
                )


class SoftTestbed:
    """Two soft stacks back to back: the point-to-point backend testbed.

    The same shape as :class:`~repro.engine.testbed.Testbed` —
    ``engine_a``/``engine_b``/``wire``/``run()``/``now_s``/``cycle`` —
    but driven as a discrete-event loop over integer picoseconds: the
    soft stacks do nothing between packet arrivals and timer deadlines,
    so the loop jumps straight from event to event.
    """

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        service_factory: Callable[[], ServiceModel],
        link: Link = LINK_100G,
        drop_probability: float = 0.0,
        seed: int = 0,
        config: Optional[SoftStackConfig] = None,
        backend: str = "soft",
    ) -> None:
        self.wire = SoftWire(
            link, drop_probability=drop_probability, seed=seed
        )
        self.backend = backend
        self.engine_a = SoftStack(
            ip_from_string("10.0.0.1"), self.wire.port_a, service_factory(),
            config=config, name="a", seed=seed,
        )
        self.engine_b = SoftStack(
            ip_from_string("10.0.0.2"), self.wire.port_b, service_factory(),
            config=config, name="b", seed=seed,
        )
        self.time_ps = 0

    @property
    def now_s(self) -> float:
        return self.time_ps / 1e12

    @property
    def cycle(self) -> int:
        return self.time_ps // _PERIOD_PS

    def _next_event_ps(self) -> Optional[int]:
        candidates = []
        arrival = self.wire.next_arrival_ps()
        if arrival is not None:
            candidates.append(arrival)
        for engine in (self.engine_a, self.engine_b):
            wakeup = engine.next_wakeup_ps()
            if wakeup is not None:
                candidates.append(wakeup)
        future = [t for t in candidates if t > self.time_ps]
        return min(future) if future else None

    def _settle(self) -> None:
        """Process everything due at the current instant."""
        engine_a, engine_b = self.engine_a, self.engine_b
        engine_a.now_ps = self.time_ps
        engine_b.now_ps = self.time_ps
        engine_a.tick()
        engine_b.tick()

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_time_s: float = 1.0,
        max_steps: int = 50_000_000,
        wakeup_ps: Optional[Callable[[], Optional[float]]] = None,
        quiet_cycle: Optional[Callable[[], Optional[int]]] = None,
    ) -> bool:
        """Event-driven run; the same contract as ``Testbed.run``.

        ``quiet_cycle`` is accepted for signature parity and ignored:
        this loop is already event-driven, so there are no per-cycle
        no-op iterations to batch away.
        """
        max_time_ps = int(max_time_s * 1e12)
        steps = 0
        while True:
            self._settle()
            if until is not None and until():
                return True
            if self.time_ps >= max_time_ps or steps >= max_steps:
                return False
            nxt = self._next_event_ps()
            if wakeup_ps is not None:
                external = wakeup_ps()
                if external is not None:
                    # Ceil: landing one truncated ps *before* a float
                    # wakeup leaves the driver's predicate unsatisfied
                    # with no other event in the future — a stall.
                    external_ps = int(external) + (external > int(external))
                    if external_ps > self.time_ps and (
                        nxt is None or external_ps < nxt
                    ):
                        nxt = external_ps
            if nxt is None:
                if until is None:
                    return True  # fully idle and nothing awaited
                return False  # stalled: no event can change until()
            self.time_ps = min(nxt, max_time_ps)
            steps += 1
