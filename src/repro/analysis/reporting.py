"""Rendering of experiment results: aligned tables, paper-vs-measured rows.

Every experiment driver returns an :class:`ExperimentResult`; the bench
harness prints it through :func:`render`, producing the same rows/series
the paper's exhibit reports plus a paper-vs-measured annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One exhibit's reproduction output."""

    exhibit: str  # e.g. "Figure 8a"
    title: str
    columns: List[str]
    rows: List[Sequence[Any]]
    #: "simulated" | "functional" | "calibrated" | mixtures
    method: str = "simulated"
    notes: List[str] = field(default_factory=list)
    #: Named scalar comparisons: name -> (paper value, measured value).
    checks: Dict[str, "PaperCheck"] = field(default_factory=dict)

    def check(self, name: str, paper: float, measured: float, tolerance: float = 0.35) -> None:
        self.checks[name] = PaperCheck(paper, measured, tolerance)

    def all_checks_pass(self) -> bool:
        return all(check.passes for check in self.checks.values())


@dataclass
class PaperCheck:
    """A paper-reported scalar vs our measured value."""

    paper: float
    measured: float
    #: Allowed relative deviation; shapes/ratios, not absolutes.
    tolerance: float = 0.35

    @property
    def ratio(self) -> float:
        if self.paper == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.paper

    @property
    def passes(self) -> bool:
        return abs(self.ratio - 1.0) <= self.tolerance


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _column_widths(
    columns: Sequence[str], cells: Sequence[Sequence[str]]
) -> List[int]:
    return [
        max(len(str(column)), *(len(row[i]) for row in cells)) if cells else len(str(column))
        for i, column in enumerate(columns)
    ]


def render_table(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[format_value(v) for v in row] for row in rows]
    widths = _column_widths(columns, cells)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in cells)
    return "\n".join([header, sep, body]) if cells else "\n".join([header, sep])


def render_markdown_table(
    columns: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """The same aligned table as :func:`render_table`, as GitHub Markdown."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = _column_widths(columns, cells)

    def line(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"

    out = [line([str(c) for c in columns]), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render(result: ExperimentResult) -> str:
    lines = [
        f"== {result.exhibit}: {result.title} [{result.method}] ==",
        render_table(result.columns, result.rows),
    ]
    for name, check in result.checks.items():
        status = "OK " if check.passes else "OFF"
        lines.append(
            f"  [{status}] {name}: paper {format_value(check.paper)}, "
            f"measured {format_value(check.measured)} "
            f"(x{check.ratio:.2f} of paper)"
        )
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
