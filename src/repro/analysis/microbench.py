"""Cycle-level micro-benchmarks of the event-processing designs.

These drive synthetic event streams through the actual simulated
hardware — FPCs, the scheduler with its coalesce FIFOs, and the stalling
baseline — to measure *events consumed per second*.  They are the
"simulated" backbone of Figs 2, 15 and 16b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..engine.baseline import NullFpu, SingleCycleAccelerator, StallingAccelerator
from ..engine.events import EventKind, TcpEvent
from ..engine.fpc import FlowProcessingCore
from ..engine.ftengine import ENGINE_FREQ_HZ
from ..engine.memory_manager import MemoryManager
from ..engine.scheduler import Scheduler
from ..sim.memory import DRAMModel
from ..tcp.tcb import Tcb


def _synthetic_event(flow_id: int, index: int) -> TcpEvent:
    """A user-request event with a monotonically increasing pointer."""
    return TcpEvent(EventKind.USER_REQ, flow_id, req=index + 1)


def measure_baseline_event_rate(
    stall_cycles: int = 17,
    cycles: int = 20_000,
    freq_hz: float = ENGINE_FREQ_HZ,
) -> float:
    """w-RMW design: one event per ``stall_cycles`` (§3.1)."""
    accel = StallingAccelerator(stall_cycles=stall_cycles, freq_hz=freq_hz)
    index = 0
    for _ in range(cycles):
        if not accel.input.full:
            accel.offer_event(_synthetic_event(0, index))
            index += 1
        accel.tick()
    return accel.events_processed * freq_hz / cycles


def measure_tonic_event_rate(
    cycles: int = 20_000, freq_hz: float = 100e6
) -> float:
    """w/o-RMW design: one event per cycle at 100 MHz (§3.1)."""
    accel = SingleCycleAccelerator(freq_hz=freq_hz)
    index = 0
    for _ in range(cycles):
        if not accel.input.full:
            accel.offer_event(_synthetic_event(0, index))
            index += 1
        accel.tick()
    return accel.events_processed * freq_hz / cycles


def measure_fpc_event_rate(
    fpu_latency: int = 14,
    flows: int = 1,
    cycles: int = 20_000,
    freq_hz: float = ENGINE_FREQ_HZ,
) -> float:
    """One FPC with a latency-only FPU: the Fig 15 F4T curve.

    Events of the same flow accumulate in the event table while the FPU
    is busy, so the acceptance rate stays at one event per two cycles —
    125 M events/s at 250 MHz — for *any* FPU latency (§4.5).
    """
    fpc = FlowProcessingCore(0, slots=max(flows, 1), fpu=NullFpu(fpu_latency))
    for flow_id in range(flows):
        fpc.accept_tcb(Tcb(flow_id=flow_id))
    index = 0
    for _ in range(cycles):
        if not fpc.input.full:
            fpc.offer_event(_synthetic_event(index % flows, index))
            index += 1
        fpc.tick()
        fpc.drain_results()
    return fpc.events_accepted * freq_hz / cycles


@dataclass
class HeaderRateDesign:
    """A Fig 16b design point: FPC count, coalescing, or the baseline."""

    name: str
    num_fpcs: int = 1
    coalescing: bool = False
    baseline_stall: Optional[int] = None  # set -> stalling baseline

    @classmethod
    def baseline(cls) -> "HeaderRateDesign":
        return cls("Baseline", baseline_stall=17)

    @classmethod
    def one_fpc(cls) -> "HeaderRateDesign":
        return cls("1FPC", num_fpcs=1, coalescing=False)

    @classmethod
    def one_fpc_coalescing(cls) -> "HeaderRateDesign":
        return cls("1FPC-C", num_fpcs=1, coalescing=True)

    @classmethod
    def f4t(cls) -> "HeaderRateDesign":
        return cls("F4T", num_fpcs=8, coalescing=True)


def measure_header_rate(
    design: HeaderRateDesign,
    workload: str,
    offered_rate: float,
    flows: int,
    cycles: int = 30_000,
    freq_hz: float = ENGINE_FREQ_HZ,
    fpu_latency: int = 14,
) -> float:
    """Consumed header-event rate for a design under a §6 workload.

    ``workload`` is 'bulk' (events round-robin over one flow per core —
    consecutive same-flow events) or 'rr' (round-robin over all flows).
    The offered load models 24 cores' software submission rate; events
    that the design cannot accept this cycle are retried (backpressure),
    so the measured rate is the design's consumption capacity.
    """
    if workload not in ("bulk", "rr"):
        raise ValueError(f"unknown workload {workload!r}")
    offered_per_cycle = offered_rate / freq_hz

    if design.baseline_stall is not None:
        accel = StallingAccelerator(stall_cycles=design.baseline_stall, freq_hz=freq_hz)
        accepted = 0
        credit = 0.0
        index = 0
        for _ in range(cycles):
            credit += offered_per_cycle
            while credit >= 1.0 and not accel.input.full:
                accel.offer_event(_synthetic_event(index % flows, index))
                index += 1
                accepted += 1
                credit -= 1.0
            credit = min(credit, 8.0)
            accel.tick()
        return accel.events_processed * freq_hz / cycles

    slots = max(1, (flows + design.num_fpcs - 1) // design.num_fpcs)
    fpcs = [
        FlowProcessingCore(i, slots=slots, fpu=NullFpu(fpu_latency))
        for i in range(design.num_fpcs)
    ]
    manager = MemoryManager(DRAMModel.hbm())
    scheduler = Scheduler(fpcs, manager, coalescing=design.coalescing)
    for flow_id in range(flows):
        scheduler.register_new_flow(Tcb(flow_id=flow_id))

    # In bulk mode each core streams one flow, so consecutive submitted
    # events hit the same flow (command queues are read in batches,
    # §5.1); in rr mode consecutive events hit different flows.
    cores = min(24, flows)
    consumed = 0
    credit = 0.0
    index = 0
    per_core_counter = [0] * cores
    for _ in range(cycles):
        credit += offered_per_cycle
        while credit >= 1.0:
            if workload == "bulk":
                # Batched reads: bursts of consecutive events per flow.
                core = (index // 8) % cores
                flow_id = core % flows
            else:
                flow_id = index % flows
            per_core_counter[core if workload == "bulk" else 0] += 1
            if not scheduler.submit(_synthetic_event(flow_id, index)):
                break  # backpressure: retry next cycle
            index += 1
            consumed += 1
            credit -= 1.0
        credit = min(credit, 16.0)
        scheduler.tick()
        for fpc in fpcs:
            fpc.tick()
            fpc.drain_results()
    return consumed * freq_hz / cycles
