"""Congestion-window trace capture for Fig 14.

Runs a single-flow bulk transfer through the *functional* two-engine
testbed with periodic packet drops, sampling the sender TCB's cwnd over
simulated time, and provides the comparison metrics against the
independent reference simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..engine.ftengine import FtEngineConfig
from ..engine.testbed import Testbed
from ..net.link import Link
from ..net.wire import Wire
from ..refsim.netsim import CwndTrace, ReferenceTcpSimulation
from ..tcp.segment import TcpSegment


class PeriodicDataDropper:
    """Drop every Nth data-bearing frame (the Fig 14 'occasional drops')."""

    def __init__(self, every: int, start: int = 0) -> None:
        if every <= 0:
            raise ValueError("drop period must be positive")
        self.every = every
        self.start = start
        self.count = 0
        self.dropped = 0

    def __call__(self, frame, index: int) -> bool:
        payload = frame.payload
        if isinstance(payload, TcpSegment) and payload.payload:
            self.count += 1
            if self.count >= self.start and self.count % self.every == 0:
                self.dropped += 1
                return True
        return False


def capture_engine_cwnd_trace(
    algorithm: str = "newreno",
    duration_s: float = 3e-3,
    drop_every: int = 1500,
    link_gbps: float = 100.0,
    delay_us: float = 5.0,
    sample_every_cycles: int = 2000,
) -> CwndTrace:
    """Functional F4T bulk transfer with drops; returns the cwnd trace."""
    link = Link(bandwidth_gbps=link_gbps, propagation_delay_us=delay_us)
    wire = Wire(link=link, drop_a_to_b=PeriodicDataDropper(drop_every))
    tb = Testbed(
        config_a=FtEngineConfig(algorithm=algorithm),
        config_b=FtEngineConfig(),
        wire=wire,
    )
    a_flow, b_flow = tb.establish()
    trace = CwndTrace()
    payload = bytes(32768)
    state = {"next_send": 0, "next_sample": 0}

    def pump() -> bool:
        if tb.cycle >= state["next_send"]:
            tb.engine_a.send_data(a_flow, payload)
            readable = tb.engine_b.readable(b_flow)
            if readable:
                tb.engine_b.recv_data(b_flow, readable)
            state["next_send"] = tb.cycle + 32
        if tb.cycle >= state["next_sample"]:
            tcb = tb.engine_a.tcb_of(a_flow)
            if tcb is not None:
                trace.record(tb.now_s, tcb.cwnd)
            state["next_sample"] = tb.cycle + sample_every_cycles
        return tb.now_s >= duration_s

    tb.run(until=pump, max_time_s=duration_s * 4)
    return trace


def reference_cwnd_trace(
    algorithm: str = "newreno",
    duration_s: float = 3e-3,
    drop_every: int = 1500,
    link_gbps: float = 100.0,
    delay_us: float = 5.0,
) -> CwndTrace:
    """The matched reference-simulator run (NS3 stand-in)."""
    sim = ReferenceTcpSimulation(
        algorithm=algorithm,
        link_gbps=link_gbps,
        one_way_delay_ms=delay_us / 1000.0,
        duration_s=duration_s,
        drop_fn=lambda index: index > 0 and index % drop_every == 0,
        rto_s=0.05,
    )
    return sim.run()


@dataclass
class TraceComparison:
    """Similarity metrics between two cwnd traces.

    Sawtooth traces driven by count-based drops drift out of phase when
    the two systems' instantaneous throughputs differ slightly, which
    makes pointwise correlation fragile; the robust fidelity signals are
    the *distributional* ones — how many multiplicative decreases
    happened and what the average window was.
    """

    correlation: float
    median_relative_error: float
    mean_cwnd_ratio: float  # engine mean / reference mean
    engine_decreases: int
    reference_decreases: int

    @property
    def decrease_counts_match(self) -> bool:
        """Both traces show the same number of multiplicative decreases
        (within one event — boundary sampling can clip one)."""
        return abs(self.engine_decreases - self.reference_decreases) <= 1


def count_multiplicative_decreases(values: List[int], threshold: float = 0.25) -> int:
    """Count drops of >= ``threshold`` fraction between adjacent samples.

    Callers pass a series resampled on a common grid so both traces are
    judged at the same granularity (a fine-grained trace would otherwise
    double-count a single loss event's enter-recovery and exit-deflation
    dips).
    """
    count = 0
    previous = None
    for cwnd in values:
        if previous is not None and previous > 0:
            if (previous - cwnd) / previous >= threshold:
                count += 1
        previous = cwnd
    return count


def compare_traces(
    engine: CwndTrace, reference: CwndTrace, samples: int = 60, skip_s: float = 3e-4
) -> TraceComparison:
    """Resample both traces on a common grid and compare.

    ``skip_s`` discards the initial slow-start transient, whose timing
    depends on handshake details rather than the congestion algorithm.
    """
    end = min(engine.times_s[-1], reference.times_s[-1])
    grid = [skip_s + (end - skip_s) * i / (samples - 1) for i in range(samples)]
    a = engine.resampled(grid)
    b = reference.resampled(grid)

    mean_a = sum(a) / len(a)
    mean_b = sum(b) / len(b)
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b))
    var_a = sum((x - mean_a) ** 2 for x in a)
    var_b = sum((y - mean_b) ** 2 for y in b)
    correlation = (
        cov / math.sqrt(var_a * var_b) if var_a > 0 and var_b > 0 else 1.0
    )
    errors = sorted(
        abs(x - y) / max(x, y) for x, y in zip(a, b) if max(x, y) > 0
    )
    median_error = errors[len(errors) // 2] if errors else 0.0
    return TraceComparison(
        correlation=correlation,
        median_relative_error=median_error,
        mean_cwnd_ratio=mean_a / mean_b if mean_b > 0 else float("inf"),
        engine_decreases=count_multiplicative_decreases(a),
        reference_decreases=count_multiplicative_decreases(b),
    )
