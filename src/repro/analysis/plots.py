"""ASCII plotting for the exhibit report (``--plots``).

Terminal-renderable line plots and bar charts so the report can show the
*shapes* the paper's figures show — crossovers, plateaus, sawtooth decay
— without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .reporting import ExperimentResult

Point = Tuple[float, float]
MARKERS = "*o+x#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(steps - 1, max(0, round(position * (steps - 1))))


def line_plot(
    series: Dict[str, List[Point]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series on a shared ASCII canvas."""
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("nothing to plot")

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    def ty(y: float) -> float:
        return math.log10(y) if logy else y

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points if not logy or y > 0]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        previous: Optional[Tuple[int, int]] = None
        for x, y in pts:
            if logy and y <= 0:
                continue
            col = _scale(tx(x), x_low, x_high, width)
            row = height - 1 - _scale(ty(y), y_low, y_high, height)
            if previous is not None:
                # Sparse linear interpolation between consecutive points.
                pcol, prow = previous
                steps = max(abs(col - pcol), abs(row - prow))
                for step in range(1, steps):
                    icol = pcol + (col - pcol) * step // max(1, steps)
                    irow = prow + (row - prow) * step // max(1, steps)
                    if canvas[irow][icol] == " ":
                        canvas[irow][icol] = "."
            canvas[row][col] = marker
            previous = (col, row)

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top = f"{y_high:.3g}" if not logy else f"1e{y_high:.1f}"
    bottom = f"{y_low:.3g}" if not logy else f"1e{y_low:.1f}"
    lines.append(f"{top:>10} +" + "-" * width)
    for row in canvas:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{bottom:>10} +" + "-" * width)
    left = f"1e{x_low:.1f}" if logx else f"{x_low:.3g}"
    right = f"1e{x_high:.1f}" if logx else f"{x_high:.3g}"
    axis = f"{left}  {x_label}  {right}".center(width)
    lines.append(" " * 12 + axis)
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal ASCII bars, scaled to the largest value."""
    if not labels or len(labels) != len(values):
        raise ValueError("labels and values must align and be non-empty")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{str(label):>{label_width}} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


# ------------------------------------------------------ per-exhibit plots
def plot_figure2(result: ExperimentResult) -> str:
    series = {
        "w-RMW": [(row[0], row[1]) for row in result.rows],
        "w/o-RMW": [(row[0], row[2]) for row in result.rows],
    }
    return line_plot(
        series, logx=True, logy=True,
        title="Fig 2: bulk throughput vs request size (Gbps)",
        x_label="request bytes (log)", y_label="Gbps (log)",
    )


def plot_figure8(result: ExperimentResult) -> str:
    series: Dict[str, List[Point]] = {}
    for row in result.rows:
        pattern, size, cores, linux, f4t = row[0], row[1], row[2], row[3], row[4]
        if size != 128:
            continue
        series.setdefault(f"F4T {pattern}", []).append((cores, f4t))
        series.setdefault(f"Linux {pattern}", []).append((cores, linux))
    return line_plot(
        series,
        title="Fig 8: 128B throughput vs cores (Gbps)",
        x_label="CPU cores", y_label="Gbps",
    )


def plot_figure13(result: ExperimentResult) -> str:
    series = {
        "Linux": [(row[0], row[1]) for row in result.rows],
        "F4T-DRAM": [(row[0], row[2]) for row in result.rows],
        "F4T-HBM": [(row[0], row[3]) for row in result.rows],
    }
    return line_plot(
        series, logx=True,
        title="Fig 13: echo rate vs flows (Mrps)",
        x_label="concurrent flows (log)", y_label="Mrps",
    )


def plot_figure15(result: ExperimentResult) -> str:
    series = {
        "Baseline": [(row[0], row[1]) for row in result.rows],
        "F4T": [(row[0], row[2]) for row in result.rows],
    }
    return line_plot(
        series,
        title="Fig 15: event rate vs FPU latency (Mev/s)",
        x_label="FPU latency (cycles)", y_label="M events/s",
    )


def plot_figure11(result: ExperimentResult) -> str:
    labels = [f"{row[0]}:{row[1]}" for row in result.rows]
    values = [row[2] for row in result.rows]
    return bar_chart(
        labels, values, title="Fig 11: CPU cycle fractions", unit=""
    )


#: Exhibits with a dedicated plot renderer.
EXHIBIT_PLOTS = {
    "figure2": plot_figure2,
    "figure8": plot_figure8,
    "figure11": plot_figure11,
    "figure13": plot_figure13,
    "figure15": plot_figure15,
}
