"""Experiment drivers: one function per table/figure of the paper.

Each ``run_*`` regenerates the rows/series its exhibit reports and
returns an :class:`~repro.analysis.reporting.ExperimentResult` whose
``checks`` compare headline scalars against the paper's numbers.  The
``method`` field says which mechanism produced the data (DESIGN.md §4):
cycle simulation, functional protocol execution, or calibrated models.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.echo import EchoModel
from ..apps.iperf import BulkTransferModel
from ..apps.nginx import NginxPerformanceModel, simulate_closed_loop
from ..apps.roundrobin import RoundRobinModel
from ..engine.ftengine import ENGINE_FREQ_HZ, FtEngineConfig
from ..engine.resources import ftengine_cost, utilization_table
from ..host.calibration import (
    F4T_HEADER_OFFERED_BULK,
    F4T_HEADER_OFFERED_RR,
    F4T_HEADER_RATE_PER_CORE,
    NGINX_LINUX_TCP_FRACTION,
)
from ..host.cpu import CpuModel
from ..host.linux_stack import LinuxTcpStack
from ..host.pcie import PcieModel
from ..net.link import LINK_100G
from ..tcp.congestion import available_algorithms
from .cwnd import (
    capture_engine_cwnd_trace,
    compare_traces,
    reference_cwnd_trace,
)
from .microbench import (
    HeaderRateDesign,
    measure_baseline_event_rate,
    measure_fpc_event_rate,
    measure_header_rate,
    measure_tonic_event_rate,
)
from .reporting import ExperimentResult

MRPS = 1e6


# ----------------------------------------------------------------- Table 1
def run_table1() -> ExperimentResult:
    """Table 1: qualitative summary of TCP implementations."""
    config = FtEngineConfig()
    f4t_connectivity = "64K+"  # SRAM flows + DRAM-resident TCBs (§4.3)
    rows = [
        ("Host CPUs", "poor (37% to TCP)", "64K+", "limited versatility"),
        ("Embedded processors", "limited improvement", "64K+", "limited versatility"),
        ("ASICs", "good", "64K+", "none"),
        ("Existing FPGAs", "good", "1K", "limited versatility"),
        (
            "F4T",
            "good (2 cores @ 100G)",
            f4t_connectivity,
            f"full ({len(available_algorithms())} CC algorithms registered)",
        ),
    ]
    result = ExperimentResult(
        exhibit="Table 1",
        title="Summary of existing TCP implementations",
        columns=["stack", "host CPU util.", "connectivity", "flexibility"],
        rows=rows,
        method="calibrated + model capabilities",
    )
    result.check(
        "F4T SRAM-resident flows",
        paper=1024,
        measured=config.sram_flow_capacity,
        tolerance=0.01,
    )
    return result


# ----------------------------------------------------------------- Figure 1
def run_figure1() -> ExperimentResult:
    """Fig 1: Nginx on Linux — CPU breakdown and request rate."""
    breakdown = NginxPerformanceModel().cycle_breakdown("linux").fractions()
    rows = [
        ("cpu-fraction", name, round(fraction, 3), "")
        for name, fraction in sorted(breakdown.items())
    ]
    for cores in (1, 2, 4, 8, 24):
        stack = LinuxTcpStack(CpuModel(cores=cores))
        rows.append(
            ("nginx-rate", f"{cores} cores", round(stack.nginx_request_rate() / MRPS, 3), "Mrps")
        )
    result = ExperimentResult(
        exhibit="Figure 1",
        title="CPU utilization and performance of Nginx on Linux",
        columns=["series", "point", "value", "unit"],
        rows=rows,
        method="calibrated",
    )
    result.check(
        "TCP share of Nginx cycles",
        paper=0.37,
        measured=breakdown["tcp_stack"],
        tolerance=0.02,
    )
    result.notes.append(
        "Fig 1b's qualitative claim — Nginx reaches only a few Mrps on a "
        "whole dual-socket machine — corresponds to the 24-core row."
    )
    return result


# ----------------------------------------------------------------- Figure 2
def run_figure2() -> ExperimentResult:
    """Fig 2: bulk throughput of w-RMW vs w/o-RMW designs (cycle sim)."""
    w_rmw_rate = measure_baseline_event_rate(stall_cycles=17, freq_hz=322e6)
    wo_rmw_rate = measure_tonic_event_rate(freq_hz=100e6)
    rows = []
    for size in (16, 32, 64, 128, 256, 512, 1024, 2048, 4096):
        w = w_rmw_rate * size * 8 / 1e9
        wo = wo_rmw_rate * size * 8 / 1e9
        rows.append((size, round(w, 2), round(wo, 2), round(wo / w, 1)))
    result = ExperimentResult(
        exhibit="Figure 2",
        title="Bulk data transfer: w-RMW (17-cycle stall @322MHz) vs w/o-RMW (1/cycle @100MHz)",
        columns=["request B", "w-RMW Gbps", "w/o-RMW Gbps", "gap"],
        rows=rows,
        method="simulated",
    )
    result.check("w-RMW event rate (322MHz/17)", paper=18.9e6, measured=w_rmw_rate, tolerance=0.05)
    result.check("w/o-RMW event rate (100MHz)", paper=100e6, measured=wo_rmw_rate, tolerance=0.05)
    result.check(
        "w/o-RMW saturates 100G at 128B",
        paper=100.0,
        measured=min(100.0, wo_rmw_rate * 128 * 8 / 1e9),
        tolerance=0.05,
    )
    return result


# ----------------------------------------------------------------- Figure 7
def run_figure7() -> ExperimentResult:
    """Fig 7b: FPGA resource utilization of FtEngine."""
    rows = [
        (row["design"], row["lut_pct"], row["ff_pct"], row["bram_pct"])
        for row in utilization_table([1, 8])
    ]
    result = ExperimentResult(
        exhibit="Figure 7b",
        title="Resource utilization on the Xilinx U280",
        columns=["design", "LUT %", "FF %", "BRAM %"],
        rows=rows,
        method="calibrated (analytic resource model; no Vivado available)",
    )
    lut1, ff1, bram1 = ftengine_cost(1).utilization()
    lut8, ff8, bram8 = ftengine_cost(8).utilization()
    result.check("1 FPC LUT%", paper=16.0, measured=lut1, tolerance=0.08)
    result.check("1 FPC FF%", paper=11.0, measured=ff1, tolerance=0.08)
    result.check("1 FPC BRAM%", paper=27.0, measured=bram1, tolerance=0.08)
    result.check("8 FPC LUT%", paper=23.0, measured=lut8, tolerance=0.08)
    result.check("8 FPC FF%", paper=15.0, measured=ff8, tolerance=0.08)
    result.check("8 FPC BRAM%", paper=32.0, measured=bram8, tolerance=0.08)
    return result


# ----------------------------------------------------------------- Figure 8
def run_figure8() -> ExperimentResult:
    """Fig 8: bulk + round-robin throughput, Linux vs F4T, 64/128 B."""
    rows: List[tuple] = []
    f4t_points: Dict[tuple, float] = {}
    for pattern in ("bulk", "round-robin"):
        for size in (64, 128):
            for cores in (1, 2, 4, 8):
                linux = LinuxTcpStack(CpuModel(cores=cores))
                if pattern == "bulk":
                    linux_gbps = linux.bulk_goodput_gbps(size)
                    f4t = BulkTransferModel(cores=cores).request_rate(size)
                else:
                    linux_gbps = (
                        linux.round_robin_request_rate(size) * size * 8 / 1e9
                    )
                    f4t = RoundRobinModel(cores=cores).request_rate(size)
                f4t_points[(pattern, size, cores)] = f4t.goodput_gbps
                rows.append(
                    (
                        pattern,
                        size,
                        cores,
                        round(linux_gbps, 2),
                        round(f4t.goodput_gbps, 1),
                        round(f4t.requests_per_s / MRPS, 1),
                        f4t.bottleneck,
                    )
                )
    result = ExperimentResult(
        exhibit="Figure 8",
        title="Throughput with bulk and round-robin request patterns",
        columns=["pattern", "req B", "cores", "Linux Gbps", "F4T Gbps", "F4T Mrps", "F4T bound"],
        rows=rows,
        method="calibrated (software/PCIe/link) + simulated engine",
    )
    result.check("F4T bulk 128B 1 core Gbps", 45.0, f4t_points[("bulk", 128, 1)])
    result.check("F4T bulk 128B 2 cores Gbps", 87.0, f4t_points[("bulk", 128, 2)])
    result.check("F4T bulk 64B 8 cores Gbps", 89.7, f4t_points[("bulk", 64, 8)])
    result.check("F4T rr 128B 1 core Gbps", 35.0, f4t_points[("round-robin", 128, 1)])
    result.check("F4T rr 128B 2 cores Gbps", 63.0, f4t_points[("round-robin", 128, 2)])
    result.check("F4T rr 128B 8 cores Gbps", 90.0, f4t_points[("round-robin", 128, 8)])
    linux8 = LinuxTcpStack(CpuModel(cores=8))
    result.check("Linux bulk 128B 8 cores Gbps", 8.3, linux8.bulk_goodput_gbps(128))
    result.check(
        "Linux rr 128B 1 core Gbps",
        0.126,
        LinuxTcpStack(CpuModel(cores=1)).round_robin_request_rate(128) * 128 * 8 / 1e9,
    )
    return result


# ----------------------------------------------------------------- Figure 9
def run_figure9() -> ExperimentResult:
    """Fig 9: bulk transfer across request sizes; PCIe-bound small end."""
    rows = []
    target = None
    for size in (16, 32, 64, 128, 256, 512, 1024):
        for cores in (1, 2, 4, 8, 16):
            point = BulkTransferModel(cores=cores).request_rate(size)
            rows.append(
                (
                    size,
                    cores,
                    round(point.goodput_gbps, 1),
                    round(point.requests_per_s / MRPS, 1),
                    point.bottleneck,
                )
            )
            if size == 16 and cores == 16:
                target = point
    result = ExperimentResult(
        exhibit="Figure 9",
        title="Bulk data transfer with various request sizes",
        columns=["req B", "cores", "Gbps", "Mrps", "bound"],
        rows=rows,
        method="calibrated (software/PCIe/link) + simulated engine",
    )
    assert target is not None
    result.check("16B @16 cores Mrps", 396.0, target.requests_per_s / MRPS)
    result.check("16B @16 cores Gbps", 50.7, target.goodput_gbps)
    result.check(
        "16B bound is PCIe", paper=1.0, measured=1.0 if target.bottleneck == "pcie" else 0.0, tolerance=0.0
    )
    return result


# ---------------------------------------------------------------- Figure 10
def run_figure10(quick: bool = False) -> ExperimentResult:
    """Fig 10: Nginx request rate vs concurrent flows, 1-4 cores."""
    rows = []
    ratios = {}
    requests = 20_000 if quick else 60_000
    flow_points = (16, 64, 256) if quick else (4, 16, 64, 128, 256)
    for cores in (1, 2, 4):
        for flows in flow_points:
            linux_rate, _ = simulate_closed_loop(
                "linux", flows=flows, cores=cores, think_s=0.28e-3, requests=requests
            )
            f4t_rate, _ = simulate_closed_loop(
                "f4t", flows=flows, cores=cores, think_s=0.28e-3, requests=requests
            )
            rows.append(
                (
                    cores,
                    flows,
                    round(linux_rate / 1e3, 1),
                    round(f4t_rate / 1e3, 1),
                    round(f4t_rate / linux_rate, 2),
                )
            )
            ratios[(cores, flows)] = f4t_rate / linux_rate
    result = ExperimentResult(
        exhibit="Figure 10",
        title="Request processing rate of Nginx (closed loop)",
        columns=["cores", "flows", "Linux Krps", "F4T Krps", "speedup"],
        rows=rows,
        method="calibrated closed-loop simulation",
    )
    for cores in (1, 2, 4):
        result.check(
            f"saturation speedup @{cores} cores (256 flows)",
            paper=2.7,
            measured=ratios[(cores, 256 if not quick else 256)],
            tolerance=0.15,
        )
    return result


# ---------------------------------------------------------------- Figure 11
def run_figure11() -> ExperimentResult:
    """Fig 11: CPU utilization breakdown of Nginx, Linux vs F4T."""
    model = NginxPerformanceModel()
    rows = []
    for stack in ("linux", "f4t"):
        fractions = model.cycle_breakdown(stack).fractions()
        for name, fraction in sorted(fractions.items()):
            rows.append((stack, name, round(fraction, 3)))
    result = ExperimentResult(
        exhibit="Figure 11",
        title="CPU utilization breakdown of Nginx (1 core, 64 flows)",
        columns=["stack", "category", "fraction"],
        rows=rows,
        method="calibrated",
    )
    result.check("application cycles gained", paper=2.8, measured=model.speedup(), tolerance=0.05)
    result.check("CPU cycles saved", paper=0.64, measured=model.cpu_savings_fraction(), tolerance=0.05)
    result.check(
        "Linux TCP fraction", paper=NGINX_LINUX_TCP_FRACTION,
        measured=model.cycle_breakdown("linux").fraction("tcp_stack"), tolerance=0.02,
    )
    result.check(
        "F4T TCP fraction removed", paper=0.0,
        measured=model.cycle_breakdown("f4t").fraction("tcp_stack"), tolerance=0.01,
    )
    return result


# ---------------------------------------------------------------- Figure 12
def run_figure12(quick: bool = False) -> ExperimentResult:
    """Fig 12: median and p99 Nginx latency."""
    requests = 20_000 if quick else 60_000
    _, linux_hist = simulate_closed_loop("linux", flows=64, cores=1, requests=requests)
    _, f4t_hist = simulate_closed_loop("f4t", flows=64, cores=1, requests=requests)
    rows = [
        ("linux", round(linux_hist.median * 1e6, 1), round(linux_hist.p99 * 1e6, 1)),
        ("f4t", round(f4t_hist.median * 1e6, 1), round(f4t_hist.p99 * 1e6, 1)),
    ]
    result = ExperimentResult(
        exhibit="Figure 12",
        title="Median and 99th percentile latency of Nginx (us)",
        columns=["stack", "median us", "p99 us"],
        rows=rows,
        method="calibrated closed-loop simulation",
    )
    result.check(
        "median latency ratio (Linux/F4T)",
        paper=3.7,
        measured=linux_hist.median / f4t_hist.median,
        tolerance=0.30,
    )
    result.check(
        "p99 latency ratio (Linux/F4T)",
        paper=26.0,
        measured=linux_hist.p99 / f4t_hist.p99,
        tolerance=0.40,
    )
    return result


# ---------------------------------------------------------------- Figure 13
def run_figure13() -> ExperimentResult:
    """Fig 13: 128 B echo rate vs number of flows."""
    rows = []
    points: Dict[tuple, float] = {}
    flow_counts = (256, 1024, 2048, 4096, 16384, 65536)
    for flows in flow_counts:
        linux = LinuxTcpStack(CpuModel(cores=8)).echo_rate(flows)
        ddr = EchoModel(cores=8, memory="ddr4").rate(flows)
        hbm = EchoModel(cores=8, memory="hbm").rate(flows)
        points[("linux", flows)] = linux
        points[("ddr4", flows)] = ddr
        points[("hbm", flows)] = hbm
        rows.append(
            (
                flows,
                round(linux / MRPS, 2),
                round(ddr / MRPS, 1),
                round(hbm / MRPS, 1),
                round(ddr / linux, 1),
                round(hbm / linux, 1),
            )
        )
    result = ExperimentResult(
        exhibit="Figure 13",
        title="128B echoing request rate vs concurrent flows (8 cores)",
        columns=["flows", "Linux Mrps", "F4T-DRAM Mrps", "F4T-HBM Mrps", "DRAM x", "HBM x"],
        rows=rows,
        method="calibrated software + simulated DRAM swap path",
    )
    result.check(
        "F4T vs Linux @1K flows", paper=20.0,
        measured=points[("hbm", 1024)] / points[("linux", 1024)], tolerance=0.25,
    )
    result.check(
        "F4T-DRAM vs Linux @64K", paper=12.0,
        measured=points[("ddr4", 65536)] / points[("linux", 65536)], tolerance=0.35,
    )
    result.check(
        "F4T-HBM vs Linux @64K", paper=44.0,
        measured=points[("hbm", 65536)] / points[("linux", 65536)], tolerance=0.35,
    )
    result.check(
        "DRAM throttles past 1024 flows", paper=1.0,
        measured=1.0 if points[("ddr4", 4096)] < 0.6 * points[("ddr4", 1024)] else 0.0,
        tolerance=0.0,
    )
    return result


# ---------------------------------------------------------------- Figure 14
def run_figure14(quick: bool = False) -> ExperimentResult:
    """Fig 14: congestion-window traces, F4T vs the reference simulator."""
    duration = 1.5e-3 if quick else 3e-3
    rows = []
    comparisons = {}
    for algorithm in ("newreno", "cubic"):
        engine_trace = capture_engine_cwnd_trace(
            algorithm=algorithm, duration_s=duration
        )
        reference_trace = reference_cwnd_trace(
            algorithm=algorithm, duration_s=duration
        )
        comparison = compare_traces(engine_trace, reference_trace)
        comparisons[algorithm] = comparison
        grid = [duration * i / 9 for i in range(1, 10)]
        for t in grid:
            rows.append(
                (
                    algorithm,
                    round(t * 1e3, 2),
                    engine_trace.sample_at(t) // 1460,
                    reference_trace.sample_at(t) // 1460,
                )
            )
    result = ExperimentResult(
        exhibit="Figure 14",
        title="Congestion window: F4T engine vs reference simulator (MSS units)",
        columns=["algorithm", "t ms", "F4T cwnd", "reference cwnd"],
        rows=rows,
        method="functional (engine) vs independent reference simulation",
    )
    for algorithm, comparison in comparisons.items():
        # Count-triggered drops drift out of phase between the two
        # systems, so fidelity is judged on distributional agreement:
        # same number of loss reactions, same average window.
        result.check(
            f"{algorithm} multiplicative-decrease count ratio", paper=1.0,
            measured=comparison.engine_decreases
            / max(1, comparison.reference_decreases),
            tolerance=0.45,
        )
        result.check(
            f"{algorithm} mean cwnd ratio", paper=1.0,
            measured=comparison.mean_cwnd_ratio, tolerance=0.45,
        )
        result.notes.append(
            f"{algorithm}: correlation {comparison.correlation:.2f}, "
            f"median pointwise error {comparison.median_relative_error:.2f} "
            f"(sawtooth phase drift; see TraceComparison docstring)"
        )
    return result


# ---------------------------------------------------------------- Figure 15
def run_figure15() -> ExperimentResult:
    """Fig 15: event rate vs FPU processing latency (cycle sim)."""
    rows = []
    f4t_rates = []
    latencies = (1, 5, 10, 14, 20, 30, 41, 50, 60, 68)
    for latency in latencies:
        baseline = measure_baseline_event_rate(stall_cycles=latency, cycles=10_000)
        f4t = measure_fpc_event_rate(fpu_latency=latency, cycles=10_000)
        f4t_rates.append(f4t)
        rows.append((latency, round(baseline / MRPS, 1), round(f4t / MRPS, 1)))
    result = ExperimentResult(
        exhibit="Figure 15",
        title="Event processing rate vs FPU processing latency",
        columns=["latency cyc", "Baseline Mev/s", "F4T Mev/s"],
        rows=rows,
        method="simulated",
    )
    result.check("F4T rate at latency 14 (NewReno)", 125e6, f4t_rates[3], tolerance=0.05)
    result.check("F4T rate at latency 68 (Vegas)", 125e6, f4t_rates[-1], tolerance=0.05)
    result.check(
        "F4T flatness (min/max)", paper=1.0,
        measured=min(f4t_rates) / max(f4t_rates), tolerance=0.02,
    )
    result.check(
        "Baseline decays ~1/latency", paper=17 / 68,
        measured=measure_baseline_event_rate(68, cycles=10_000)
        / measure_baseline_event_rate(17, cycles=10_000),
        tolerance=0.10,
    )
    result.notes.append(
        "Per-algorithm FPU latencies (§5.4): NewReno 14, CUBIC 41, Vegas 68 "
        "cycles — all sustain the same 125M events/s on F4T."
    )
    return result


# --------------------------------------------------------------- Figure 16a
def run_figure16a() -> ExperimentResult:
    """Fig 16a: header processing rate vs cores, 16B vs 8B commands."""
    pcie = PcieModel()
    engine_cap = 8 * 125e6  # 8 FPCs, one event per two 250 MHz cycles
    rows = []
    rate_16 = {}
    rate_8 = {}
    for cores in (1, 2, 4, 8, 12, 16, 20, 24):
        software = cores * F4T_HEADER_RATE_PER_CORE
        r16 = min(software, pcie.max_requests_per_s(0, command_bytes=16), engine_cap)
        r8 = min(software, pcie.max_requests_per_s(0, command_bytes=8), engine_cap)
        rate_16[cores] = r16
        rate_8[cores] = r8
        rows.append((cores, round(r16 / MRPS), round(r8 / MRPS)))
    result = ExperimentResult(
        exhibit="Figure 16a",
        title="Header processing rate vs CPU cores (payload excluded)",
        columns=["cores", "16B cmd Mrps", "8B cmd Mrps"],
        rows=rows,
        method="calibrated (PCIe + per-core rate) + engine cap",
    )
    result.check(
        "16B commands hit the PCIe ceiling", paper=794.0,
        measured=rate_16[24] / MRPS, tolerance=0.10,
    )
    result.check(
        "8B commands scale to ~900 Mrps+", paper=900.0,
        measured=rate_8[24] / MRPS, tolerance=0.20,
    )
    result.check(
        "8B scaling linear to 16 cores", paper=16.0,
        measured=rate_8[16] / rate_8[1], tolerance=0.05,
    )
    return result


# --------------------------------------------------------------- Figure 16b
def run_figure16b(quick: bool = False) -> ExperimentResult:
    """Fig 16b: header rates of Baseline / 1FPC / 1FPC-C / F4T (cycle sim)."""
    cycles = 10_000 if quick else 30_000
    designs = [
        HeaderRateDesign.baseline(),
        HeaderRateDesign.one_fpc(),
        HeaderRateDesign.one_fpc_coalescing(),
        HeaderRateDesign.f4t(),
    ]
    offered = {"bulk": F4T_HEADER_OFFERED_BULK, "rr": F4T_HEADER_OFFERED_RR}
    flows = {"bulk": 24, "rr": 384}  # 24 cores; RR uses 16 flows per core
    measured: Dict[tuple, float] = {}
    rows = []
    for design in designs:
        row = [design.name]
        for workload in ("bulk", "rr"):
            rate = measure_header_rate(
                design, workload, offered[workload], flows[workload], cycles=cycles
            )
            measured[(design.name, workload)] = rate
            row.append(round(rate / MRPS))
        baseline_bulk = measured[("Baseline", "bulk")]
        baseline_rr = measured[("Baseline", "rr")]
        row.append(round(measured[(design.name, "bulk")] / baseline_bulk, 1))
        row.append(round(measured[(design.name, "rr")] / baseline_rr, 1))
        rows.append(tuple(row))
    result = ExperimentResult(
        exhibit="Figure 16b",
        title="Header processing rate of intermediate designs (24 cores)",
        columns=["design", "bulk Mrps", "rr Mrps", "bulk x", "rr x"],
        rows=rows,
        method="simulated",
    )
    base_bulk = measured[("Baseline", "bulk")]
    base_rr = measured[("Baseline", "rr")]
    result.check("1FPC bulk speedup", 8.6, measured[("1FPC", "bulk")] / base_bulk, tolerance=0.15)
    result.check("1FPC rr speedup", 8.4, measured[("1FPC", "rr")] / base_rr, tolerance=0.15)
    result.check("1FPC-C bulk speedup", 62.3, measured[("1FPC-C", "bulk")] / base_bulk, tolerance=0.15)
    result.check("1FPC-C rr speedup", 8.6, measured[("1FPC-C", "rr")] / base_rr, tolerance=0.15)
    result.check("F4T bulk speedup", 63.1, measured[("F4T", "bulk")] / base_bulk, tolerance=0.15)
    result.check("F4T rr speedup", 71.3, measured[("F4T", "rr")] / base_rr, tolerance=0.15)
    return result


# ----------------------------------------------------------------- Table 2
def run_table2(quick: bool = True) -> ExperimentResult:
    """Table 2: which mechanism targets which situation, with evidence."""
    fig16b = run_figure16b(quick=quick)
    by_name = {row[0]: row for row in fig16b.rows}
    rows = [
        (
            "FPC architecture",
            "all situations",
            f"1FPC = {by_name['1FPC'][3]}x bulk / {by_name['1FPC'][4]}x rr over Baseline",
        ),
        (
            "Scheduler (event coalescing)",
            "events of the same flow",
            f"1FPC-C = {by_name['1FPC-C'][3]}x bulk (rr unchanged at {by_name['1FPC-C'][4]}x)",
        ),
        (
            "Parallel FPCs",
            "events of different flows",
            f"F4T = {by_name['F4T'][4]}x rr (bulk already coalesced)",
        ),
        (
            "Scheduler (FPC migration)",
            "event load imbalance",
            "congested-FPC flows migrate to the idlest FPC (see scheduler tests)",
        ),
    ]
    result = ExperimentResult(
        exhibit="Table 2",
        title="Target situations of F4T's solutions (with measured evidence)",
        columns=["solution", "target situation", "measured evidence"],
        rows=rows,
        method="simulated",
    )
    result.checks.update(fig16b.checks)
    return result


#: Every exhibit driver, for the print-everything entry point.
ALL_EXPERIMENTS = {
    "table1": run_table1,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "figure11": run_figure11,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "figure14": run_figure14,
    "figure15": run_figure15,
    "figure16a": run_figure16a,
    "figure16b": run_figure16b,
    "table2": run_table2,
}
