"""Regenerate every exhibit and render the full reproduction report.

Usage::

    python -m repro.analysis.report            # everything (minutes)
    python -m repro.analysis.report figure8    # one exhibit
    python -m repro.analysis.report --quick    # reduced sample counts

The same machinery backs EXPERIMENTS.md: each section shows the rows the
paper's exhibit reports plus the paper-vs-measured checks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from .experiments import ALL_EXPERIMENTS
from .reporting import ExperimentResult, render

#: Drivers accepting a ``quick`` keyword (the slow, sampled ones).
_QUICKABLE = {"figure10", "figure12", "figure14", "figure16b", "table2"}

#: Stable presentation order (paper order).
EXHIBIT_ORDER = [
    "table1",
    "figure1",
    "figure2",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16a",
    "figure16b",
    "table2",
]


def run_all(
    names: Optional[List[str]] = None, quick: bool = False
) -> Dict[str, ExperimentResult]:
    """Run the selected exhibits; returns name -> result."""
    selected = names if names else EXHIBIT_ORDER
    results: Dict[str, ExperimentResult] = {}
    for name in selected:
        driver = ALL_EXPERIMENTS[name]
        if quick and name in _QUICKABLE:
            results[name] = driver(quick=True)
        else:
            results[name] = driver()
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "exhibits",
        nargs="*",
        choices=EXHIBIT_ORDER + [[]],
        help="exhibits to run (default: all, in paper order)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sample counts"
    )
    parser.add_argument(
        "--plots", action="store_true", help="render ASCII plots where available"
    )
    args = parser.parse_args(argv)

    names = list(args.exhibits) if args.exhibits else None
    failures = 0
    started = time.time()
    for name, result in run_all(names, quick=args.quick).items():
        print()
        print(render(result))
        if args.plots:
            from .plots import EXHIBIT_PLOTS

            plotter = EXHIBIT_PLOTS.get(name)
            if plotter is not None:
                print()
                print(plotter(result))
        if not result.all_checks_pass():
            failures += 1
    print()
    print(
        f"ran {len(names or EXHIBIT_ORDER)} exhibits in "
        f"{time.time() - started:.0f}s wall; "
        f"{failures} with out-of-tolerance checks"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
