"""Experiment harness: per-exhibit drivers, micro-benchmarks, reporting."""

from .experiments import ALL_EXPERIMENTS
from .microbench import (
    HeaderRateDesign,
    measure_baseline_event_rate,
    measure_fpc_event_rate,
    measure_header_rate,
    measure_tonic_event_rate,
)
from .reporting import ExperimentResult, PaperCheck, render, render_table

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "HeaderRateDesign",
    "PaperCheck",
    "measure_baseline_event_rate",
    "measure_fpc_event_rate",
    "measure_header_rate",
    "measure_tonic_event_rate",
    "render",
    "render_table",
]
