"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro info              # what this package is
    python -m repro report [--quick]  # regenerate every paper exhibit
    python -m repro demo              # the quickstart client/server run
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.engine.ftengine import FtEngineConfig
    from repro.tcp.congestion import available_algorithms

    config = FtEngineConfig()
    print(f"repro {repro.__version__} — reproduction of:")
    print(f"  {repro.__paper__}")
    print()
    print("reference design:")
    print(f"  {config.num_fpcs} FPCs x {config.fpc_slots} flows "
          f"({config.sram_flow_capacity} SRAM-resident), {config.memory} TCB store")
    print(f"  congestion algorithms: {', '.join(sorted(available_algorithms()))}")
    print()
    print("try:  python -m repro demo")
    print("      python -m repro report --quick")
    print("      pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import main as report_main

    argv = list(args.exhibits)
    if args.quick:
        argv.append("--quick")
    if args.plots:
        argv.append("--plots")
    return report_main(argv)


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.engine import Testbed
    from repro.host import F4TLibrary

    testbed = Testbed()
    pump = lambda cond, t: testbed.run(until=cond, max_time_s=testbed.now_s + t)
    lib_a = F4TLibrary(testbed.engine_a, pump=pump)
    lib_b = F4TLibrary(testbed.engine_b, pump=pump)

    server = lib_b.socket()
    server.bind_listen(80)
    client = lib_a.socket()
    client.connect((testbed.engine_b.ip, 80))
    connection = server.accept()
    client.sendall(b"hello from the demo")
    print("server received:", connection.recv_exactly(19))
    connection.sendall(b"and hello back")
    print("client received:", client.recv_exactly(14))
    client.close()
    connection.close()
    testbed.run(
        until=lambda: not testbed.engine_a.flows and not testbed.engine_b.flows,
        max_time_s=10.0,
    )
    print(f"done in {testbed.now_s * 1e6:.1f} simulated microseconds; "
          f"{testbed.wire.bytes_sent} bytes on the wire")
    return 0


def _cmd_iperf(args: argparse.Namespace) -> int:
    """Model + functional bulk measurement, iPerf style (Fig 8a/9)."""
    from repro.apps.iperf import BulkTransferModel, run_functional_bulk

    point = BulkTransferModel(cores=args.cores).request_rate(args.size)
    print(f"modelled  : {point.goodput_gbps:6.1f} Gbps "
          f"({point.requests_per_s / 1e6:.1f} Mrps, "
          f"{args.size} B requests, {args.cores} cores, "
          f"bound by {point.bottleneck})")
    result = run_functional_bulk(
        total_bytes=args.bytes, request_bytes=max(args.size, 64)
    )
    print(f"functional: {result.goodput_gbps:6.1f} Gbps moving "
          f"{result.bytes_delivered} real bytes through the engines "
          f"in {result.elapsed_s * 1e6:.1f} simulated us")
    print("(the functional run is a single unpaced flow on the simulated "
          "wire; the modelled number includes the calibrated host terms)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="package and design summary")
    report = subparsers.add_parser("report", help="regenerate paper exhibits")
    report.add_argument("exhibits", nargs="*", help="subset of exhibits")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--plots", action="store_true")
    subparsers.add_parser("demo", help="run the quickstart demo")
    iperf = subparsers.add_parser("iperf", help="bulk-transfer measurement")
    iperf.add_argument("--size", type=int, default=128, help="request bytes")
    iperf.add_argument("--cores", type=int, default=2, help="CPU cores")
    iperf.add_argument(
        "--bytes", type=int, default=500_000, help="functional transfer size"
    )

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "report": _cmd_report,
        "demo": _cmd_demo,
        "iperf": _cmd_iperf,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
