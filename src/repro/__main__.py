"""Command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro info              # what this package is
    python -m repro report [--quick]  # regenerate every paper exhibit
    python -m repro demo              # the quickstart client/server run
    python -m repro traffic run ...   # scenario-driven load generation
    python -m repro lab run ...       # parallel, resumable sweeps
    python -m repro obs summary ...   # inspect exported traces
    python -m repro check all         # static analyzer + race sanitizer
    python -m repro perf run          # benchmark suite -> BENCH_perf.json
    python -m repro mem sweep ...     # TCB cache-geometry/sketch sweeps
    python -m repro fabric sweep ...  # backend head-to-head over a fabric
    python -m repro shard run ...     # sharded multi-process simulation
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

#: Default run-store location; ``*.sqlite`` is gitignored.
DEFAULT_LAB_DB = "lab.sqlite"


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.engine.ftengine import FtEngineConfig
    from repro.tcp.congestion import available_algorithms

    config = FtEngineConfig()
    print(f"repro {repro.__version__} — reproduction of:")
    print(f"  {repro.__paper__}")
    print()
    print("reference design:")
    print(f"  {config.num_fpcs} FPCs x {config.fpc_slots} flows "
          f"({config.sram_flow_capacity} SRAM-resident), {config.memory} TCB store")
    print(f"  congestion algorithms: {', '.join(sorted(available_algorithms()))}")
    print()
    print("try:  python -m repro demo")
    print("      python -m repro report --quick")
    print("      pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import main as report_main

    argv = list(args.exhibits)
    if args.quick:
        argv.append("--quick")
    if args.plots:
        argv.append("--plots")
    return report_main(argv)


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.engine import Testbed
    from repro.host import F4TLibrary

    testbed = Testbed()
    pump = lambda cond, t: testbed.run(until=cond, max_time_s=testbed.now_s + t)
    lib_a = F4TLibrary(testbed.engine_a, pump=pump)
    lib_b = F4TLibrary(testbed.engine_b, pump=pump)

    server = lib_b.socket()
    server.bind_listen(80)
    client = lib_a.socket()
    client.connect((testbed.engine_b.ip, 80))
    connection = server.accept()
    client.sendall(b"hello from the demo")
    print("server received:", connection.recv_exactly(19))
    connection.sendall(b"and hello back")
    print("client received:", client.recv_exactly(14))
    client.close()
    connection.close()
    testbed.run(
        until=lambda: not testbed.engine_a.flows and not testbed.engine_b.flows,
        max_time_s=10.0,
    )
    print(f"done in {testbed.now_s * 1e6:.1f} simulated microseconds; "
          f"{testbed.wire.bytes_sent} bytes on the wire")
    return 0


def _cmd_iperf(args: argparse.Namespace) -> int:
    """Model + functional bulk measurement, iPerf style (Fig 8a/9)."""
    from repro.apps.iperf import BulkTransferModel, run_functional_bulk

    point = BulkTransferModel(cores=args.cores).request_rate(args.size)
    print(f"modelled  : {point.goodput_gbps:6.1f} Gbps "
          f"({point.requests_per_s / 1e6:.1f} Mrps, "
          f"{args.size} B requests, {args.cores} cores, "
          f"bound by {point.bottleneck})")
    result = run_functional_bulk(
        total_bytes=args.bytes, request_bytes=max(args.size, 64)
    )
    print(f"functional: {result.goodput_gbps:6.1f} Gbps moving "
          f"{result.bytes_delivered} real bytes through the engines "
          f"in {result.elapsed_s * 1e6:.1f} simulated us")
    print("(the functional run is a single unpaced flow on the simulated "
          "wire; the modelled number includes the calibrated host terms)")
    return 0


# -------------------------------------------------------------- traffic
def _cmd_traffic_list(_args: argparse.Namespace) -> int:
    from repro.traffic import available_scenarios, get_scenario

    for name in available_scenarios():
        print(get_scenario(name).describe())
        print()
    return 0


def _cmd_traffic_run(args: argparse.Namespace) -> int:
    from repro.traffic import get_scenario, run_scenario, run_scenario_model

    try:
        scenario = get_scenario(args.scenario, seed=args.seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    tap = None
    bus = None
    engine = None
    if args.backend == "model":
        if args.pcap or args.audit or args.trace or args.metrics:
            print("--pcap/--audit/--trace/--metrics need the functional "
                  "backend", file=sys.stderr)
            return 2
        result = run_scenario_model(scenario, load_scale=args.load_scale)
    else:
        from repro.engine.testbed import Testbed
        from repro.traffic import LoadEngine

        testbed = Testbed(wire=scenario.build_wire())
        if args.pcap:
            from repro.net.pcap import WireTap

            tap = WireTap.attach(testbed.wire.port_a)
        engine = LoadEngine(
            scenario, testbed=testbed,
            load_scale=args.load_scale, audit=args.audit,
        )
        if args.trace:
            from repro.obs import (
                DEFAULT_MAX_EVENTS, TraceBus, attach_load_engine,
            )

            try:
                layers = (
                    args.trace_layers.split(",") if args.trace_layers else None
                )
                bus = TraceBus(
                    layers=layers,
                    max_events=args.trace_events or DEFAULT_MAX_EVENTS,
                    sampling=args.trace_sampling,
                )
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            attach_load_engine(engine, bus)
        result = engine.run()
    print(result.summary())
    print(result.table())
    if args.csv is not None:
        if args.csv == "-":
            sys.stdout.write(result.to_csv())
        else:
            with open(args.csv, "w") as handle:
                handle.write(result.to_csv())
            print(f"wrote {args.csv}")
    if tap is not None and args.pcap:
        packets = tap.save(args.pcap)
        print(f"wrote {args.pcap} ({packets} packets)")
    if bus is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace, bus.events)
        dropped = f", {bus.dropped} dropped" if bus.dropped else ""
        print(f"wrote {args.trace} ({len(bus.events)} events{dropped}; "
              f"load into https://ui.perfetto.dev, or: "
              f"python -m repro obs summary {args.trace})")
    if args.metrics and engine is not None:
        from repro.obs import collect_traced_run

        registry = collect_traced_run(engine.testbed, result)
        snapshot = registry.snapshot()
        if args.metrics == "-":
            sys.stdout.write(snapshot.to_csv())
        else:
            with open(args.metrics, "w") as handle:
                handle.write(snapshot.to_csv())
            print(f"wrote {args.metrics} ({len(snapshot.rows)} metric rows)")
    if result.violations:
        for violation in result.violations:
            print(f"  invariant violation: {violation}", file=sys.stderr)
        return 1
    return 0 if result.finished else 1


def _cmd_traffic_sweep(args: argparse.Namespace) -> int:
    from repro.traffic import get_scenario, sweep_load

    try:
        scenario = get_scenario(args.scenario, seed=args.seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    loads = [float(x) for x in args.loads.split(",")]
    result = sweep_load(scenario, loads, backend=args.backend)
    print(result.summary())
    print(result.table())
    if args.csv is not None:
        rows = result.rows()
        header = ",".join(rows[0].keys())
        lines = [header] + [
            ",".join(str(v) for v in row.values()) for row in rows
        ]
        text = "\n".join(lines) + "\n"
        if args.csv == "-":
            sys.stdout.write(text)
        else:
            with open(args.csv, "w") as handle:
                handle.write(text)
            print(f"wrote {args.csv}")
    return 0


def _add_traffic_parser(subparsers: argparse._SubParsersAction) -> None:
    traffic = subparsers.add_parser(
        "traffic", help="scenario-driven load generation (repro.traffic)"
    )
    traffic_sub = traffic.add_subparsers(dest="traffic_command")

    run = traffic_sub.add_parser("run", help="run one scenario")
    run.add_argument("scenario", help="scenario name (see: traffic list)")
    run.add_argument("--seed", type=int, default=None, help="top-level seed")
    run.add_argument("--load-scale", type=float, default=1.0,
                     help="multiply every open-loop arrival rate")
    run.add_argument("--backend", choices=["functional", "model"],
                     default="functional")
    run.add_argument("--audit", action="store_true",
                     help="run invariant monitors during the run")
    run.add_argument("--csv", metavar="PATH", help="write per-class CSV ('-' = stdout)")
    run.add_argument("--pcap", metavar="PATH", help="capture the wire to a pcap file")
    run.add_argument("--trace", metavar="PATH",
                     help="write a Chrome/Perfetto trace-event JSON")
    run.add_argument("--trace-layers", metavar="L1,L2,...", default=None,
                     help="layers to trace (default all; 'engine' = engine.*)")
    run.add_argument("--trace-events", type=int, default=None,
                     help="event cap (default 250000)")
    run.add_argument("--trace-sampling", choices=["head", "reservoir"],
                     default="head", help="policy once the cap is hit")
    run.add_argument("--metrics", metavar="PATH",
                     help="write the labeled metrics snapshot CSV ('-' = stdout)")
    run.set_defaults(traffic_handler=_cmd_traffic_run)

    sweep = traffic_sub.add_parser("sweep", help="latency-vs-load sweep")
    sweep.add_argument("scenario", help="scenario name (see: traffic list)")
    sweep.add_argument("--seed", type=int, default=None, help="top-level seed")
    sweep.add_argument("--loads", default="0.5,1,2,4,8,12,16,24",
                       help="comma-separated load scales")
    sweep.add_argument("--backend", choices=["functional", "model"],
                       default="model")
    sweep.add_argument("--csv", metavar="PATH", help="write sweep CSV ('-' = stdout)")
    sweep.set_defaults(traffic_handler=_cmd_traffic_sweep)

    traffic_sub.add_parser(
        "list", help="available scenarios"
    ).set_defaults(traffic_handler=_cmd_traffic_list)


def _cmd_traffic(args: argparse.Namespace) -> int:
    handler = getattr(args, "traffic_handler", None)
    if handler is None:
        print("usage: python -m repro traffic {run,sweep,list}")
        return 2
    return handler(args)


# ------------------------------------------------------------------ lab
def _cmd_lab_list(_args: argparse.Namespace) -> int:
    from repro.analysis.reporting import render_table
    from repro.lab.grids import available_grids, get_grid

    rows = []
    for name in available_grids():
        grid = get_grid(name)
        rows.append((name, len(grid.expand()), grid.description))
    print(render_table(["grid", "points", "description"], rows))
    return 0


def _cmd_lab_run(args: argparse.Namespace) -> int:
    from repro.lab import run_grid
    from repro.lab.grids import available_grids, get_grids

    if not args.grids:
        print(
            "no grid named; available: " + ", ".join(available_grids()),
            file=sys.stderr,
        )
        return 2
    try:
        grids = get_grids(args.grids, quick=args.quick)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    report = run_grid(
        grids,
        args.db,
        workers=args.workers,
        timeout_s=args.timeout,
        max_retries=args.retries,
        progress=sys.stderr,
    )
    return 0 if report.ok else 1


def _cmd_lab_status(args: argparse.Namespace) -> int:
    from repro.lab import RunStore
    from repro.lab.export import status_table

    with RunStore(args.db) as store:
        totals = store.totals()
        if not sum(totals.values()):
            print(f"{args.db}: no runs recorded yet (try: python -m repro lab list)")
            return 0
        print(status_table(store))
        for record in store.records(status="error"):
            first_line = (record.error or "").splitlines()[0] if record.error else ""
            print(
                f"  error {record.run_id} [{record.experiment}] "
                f"after {record.attempts} attempts: {first_line}"
            )
    return 0


def _cmd_lab_retry(args: argparse.Namespace) -> int:
    from repro.lab import RunStore

    with RunStore(args.db) as store:
        reclaimed = store.reset_running(args.grids or None)
        reset = store.reset_errors(args.grids or None)
    print(
        f"reset {reset} error run(s) and reclaimed {reclaimed} stale "
        f"running run(s) to pending; rerun with: python -m repro lab run"
    )
    return 0


def _cmd_lab_export(args: argparse.Namespace) -> int:
    from repro.lab import RunStore
    from repro.lab.export import export_csv, export_markdown

    with RunStore(args.db) as store:
        if args.csv is not None:
            text = export_csv(store, experiment=args.grid)
            if args.csv == "-":
                sys.stdout.write(text)
            else:
                with open(args.csv, "w") as handle:
                    handle.write(text)
                print(f"wrote {args.csv}")
        else:
            print(export_markdown(store, experiment=args.grid))
    return 0


def _add_lab_parser(subparsers: argparse._SubParsersAction) -> None:
    lab = subparsers.add_parser(
        "lab", help="parallel, persistent experiment sweeps (repro.lab)"
    )
    lab_sub = lab.add_subparsers(dest="lab_command")

    def add_db(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--db", default=DEFAULT_LAB_DB, help="run-store path (SQLite)"
        )

    run = lab_sub.add_parser("run", help="sync grid(s) into the store and run them")
    run.add_argument("grids", nargs="*", help="grid names (see: lab list)")
    run.add_argument("--workers", type=int, default=1, help="worker processes")
    run.add_argument("--quick", action="store_true", help="reduced sample counts")
    run.add_argument("--timeout", type=float, default=300.0, help="per-run seconds")
    run.add_argument("--retries", type=int, default=2, help="retries per run")
    add_db(run)
    run.set_defaults(lab_handler=_cmd_lab_run)

    status = lab_sub.add_parser("status", help="per-grid state counts")
    add_db(status)
    status.set_defaults(lab_handler=_cmd_lab_status)

    retry = lab_sub.add_parser("retry", help="reset error/stale runs to pending")
    retry.add_argument("grids", nargs="*", help="limit to these grids")
    add_db(retry)
    retry.set_defaults(lab_handler=_cmd_lab_retry)

    export = lab_sub.add_parser("export", help="dump results (Markdown or CSV)")
    export.add_argument("grid", nargs="?", default=None, help="one grid (default all)")
    export.add_argument("--csv", metavar="PATH", help="write CSV here ('-' = stdout)")
    add_db(export)
    export.set_defaults(lab_handler=_cmd_lab_export)

    lab_sub.add_parser("list", help="available prebuilt grids").set_defaults(
        lab_handler=_cmd_lab_list
    )


def _cmd_lab(args: argparse.Namespace) -> int:
    handler = getattr(args, "lab_handler", None)
    if handler is None:
        print("usage: python -m repro lab {run,status,retry,export,list}")
        return 2
    return handler(args)


def main(argv: Optional[List[str]] = None) -> int:
    import repro

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="package and design summary")
    report = subparsers.add_parser("report", help="regenerate paper exhibits")
    report.add_argument("exhibits", nargs="*", help="subset of exhibits")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--plots", action="store_true")
    subparsers.add_parser("demo", help="run the quickstart demo")
    iperf = subparsers.add_parser("iperf", help="bulk-transfer measurement")
    iperf.add_argument("--size", type=int, default=128, help="request bytes")
    iperf.add_argument("--cores", type=int, default=2, help="CPU cores")
    iperf.add_argument(
        "--bytes", type=int, default=500_000, help="functional transfer size"
    )
    _add_traffic_parser(subparsers)
    _add_lab_parser(subparsers)
    from repro.check.cli import add_check_parser, main as check_main
    from repro.fabric.cli import add_fabric_parser, main as fabric_main
    from repro.mem.cli import add_mem_parser, main as mem_main
    from repro.obs.cli import add_obs_parser, main as obs_main
    from repro.perf.cli import add_perf_parser, main as perf_main
    from repro.shard.cli import add_shard_parser, main as shard_main

    add_obs_parser(subparsers)
    add_check_parser(subparsers)
    add_perf_parser(subparsers)
    add_fabric_parser(subparsers)
    add_shard_parser(subparsers)
    add_mem_parser(subparsers)

    args = parser.parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "report": _cmd_report,
        "demo": _cmd_demo,
        "iperf": _cmd_iperf,
        "traffic": _cmd_traffic,
        "lab": _cmd_lab,
        "obs": obs_main,
        "check": check_main,
        "perf": perf_main,
        "fabric": fabric_main,
        "shard": shard_main,
        "mem": mem_main,
    }
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. `... lab export | head`).
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
