"""F4T reproduction: a fast and flexible full-stack TCP acceleration
framework (Boo et al., ISCA 2023), rebuilt in Python.

Subpackages:

* :mod:`repro.sim` — cycle-level simulation kernel (the FPGA substrate);
* :mod:`repro.tcp` — the TCP protocol substrate;
* :mod:`repro.engine` — FtEngine, the paper's contribution;
* :mod:`repro.host` — the F4T software stack and the Linux baseline;
* :mod:`repro.net` — links, frames and the fault-injecting wire;
* :mod:`repro.apps` — the evaluation workloads;
* :mod:`repro.refsim` — the independent reference TCP simulator;
* :mod:`repro.analysis` — per-exhibit experiment drivers and reporting.

Quick start::

    from repro.engine import Testbed
    from repro.host import F4TLibrary

    testbed = Testbed()
    pump = lambda cond, t: testbed.run(until=cond, max_time_s=testbed.now_s + t)
    lib = F4TLibrary(testbed.engine_a, pump=pump)
"""

__version__ = "1.1.0"
__paper__ = (
    "F4T: A Fast and Flexible FPGA-based Full-stack TCP Acceleration "
    "Framework, ISCA 2023, doi:10.1145/3579371.3589090"
)
