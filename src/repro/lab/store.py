"""The SQLite-backed run store.

One row per :class:`~repro.lab.grid.GridPoint`, keyed by its content-hash
``run_id``.  The status column is the whole lifecycle::

    pending --claim()--> running --finish()--> done
                            |
                            +--fail(retry)--> pending   (not_before = backoff)
                            +--fail(final)--> error

Workers in separate processes share one database file: claiming uses a
``BEGIN IMMEDIATE`` transaction so exactly one worker wins each pending
row, and WAL mode plus a busy timeout keep concurrent readers/writers
from tripping over each other.  Because ``run_id`` is a content hash,
re-syncing the same grid is idempotent — points already ``done`` are
simply skipped, which is both crash-resume and incremental caching.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .grid import ExperimentGrid, GridPoint, PointResult, canonical_json

STATUSES = ("pending", "running", "done", "error")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id          TEXT PRIMARY KEY,
    experiment      TEXT NOT NULL,
    driver          TEXT NOT NULL,
    params          TEXT NOT NULL,           -- canonical JSON
    seed            INTEGER,
    status          TEXT NOT NULL DEFAULT 'pending',
    attempts        INTEGER NOT NULL DEFAULT 0,
    not_before      REAL NOT NULL DEFAULT 0, -- epoch s; retry backoff gate
    scalars         TEXT,                    -- JSON name -> float
    checks          TEXT,                    -- JSON name -> check dict
    metrics         TEXT,                    -- JSON MetricsSnapshot rows
    error           TEXT,
    wall_time_s     REAL,
    git_sha         TEXT,
    package_version TEXT,
    calibration_hash TEXT,
    worker          TEXT,
    created_at      REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL
);
CREATE INDEX IF NOT EXISTS idx_runs_claim ON runs(status, not_before);
CREATE INDEX IF NOT EXISTS idx_runs_experiment ON runs(experiment);
"""


@dataclass
class RunRecord:
    """One row of the store, decoded."""

    run_id: str
    experiment: str
    driver: str
    params: Dict[str, Any]
    seed: Optional[int]
    status: str
    attempts: int
    not_before: float
    scalars: Dict[str, float]
    checks: Dict[str, Dict[str, Any]]
    metrics: Optional[List[Dict[str, Any]]]
    error: Optional[str]
    wall_time_s: Optional[float]
    git_sha: Optional[str]
    package_version: Optional[str]
    calibration_hash: Optional[str]
    worker: Optional[str]
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]

    def point(self) -> GridPoint:
        return GridPoint(
            experiment=self.experiment,
            driver=self.driver,
            params=self.params,
            seed=self.seed,
        )

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "RunRecord":
        return cls(
            run_id=row["run_id"],
            experiment=row["experiment"],
            driver=row["driver"],
            params=json.loads(row["params"]),
            seed=row["seed"],
            status=row["status"],
            attempts=row["attempts"],
            not_before=row["not_before"],
            scalars=json.loads(row["scalars"]) if row["scalars"] else {},
            checks=json.loads(row["checks"]) if row["checks"] else {},
            metrics=json.loads(row["metrics"]) if row["metrics"] else None,
            error=row["error"],
            wall_time_s=row["wall_time_s"],
            git_sha=row["git_sha"],
            package_version=row["package_version"],
            calibration_hash=row["calibration_hash"],
            worker=row["worker"],
            created_at=row["created_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
        )


class RunStore:
    """Open (creating if needed) the run database at ``path``.

    Each :class:`RunStore` owns one connection; every process must make
    its own instance (sqlite connections do not survive ``fork``).
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
        self._migrate()

    def _migrate(self) -> None:
        """Add columns newer code expects to databases older code created.

        ``run_id`` content hashes make rows portable across versions, so
        an old store must keep working; additive ALTERs are the whole
        migration story (absent values read back as NULL).
        """
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        if "metrics" not in columns:
            with self._conn:
                self._conn.execute("ALTER TABLE runs ADD COLUMN metrics TEXT")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------- syncing
    def sync_grid(self, grid: ExperimentGrid) -> Tuple[int, int]:
        """Insert the grid's points as ``pending`` rows.

        Existing rows (same content hash) are left untouched whatever
        their status — a ``done`` row is a cache hit, a ``pending`` or
        ``error`` row keeps its history.  Returns ``(new, existing)``.
        """
        points = grid.expand()
        new = 0
        with self._conn:
            for point in points:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO runs "
                    "(run_id, experiment, driver, params, seed, status, created_at) "
                    "VALUES (?, ?, ?, ?, ?, 'pending', ?)",
                    (
                        point.run_id,
                        point.experiment,
                        point.driver,
                        canonical_json(dict(point.params)),
                        point.seed,
                        time.time(),
                    ),
                )
                new += cursor.rowcount
        return new, len(points) - new

    # ------------------------------------------------------------ claiming
    def claim(
        self, worker: str, experiments: Optional[Iterable[str]] = None
    ) -> Optional[RunRecord]:
        """Atomically move one eligible ``pending`` row to ``running``.

        Eligible means ``not_before`` has passed (retry backoff).  At
        most one concurrent worker can win a given row; returns ``None``
        when nothing is claimable right now.
        """
        names = list(experiments) if experiments else None
        filter_sql, filter_args = self._experiment_filter(names)
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            row = self._conn.execute(
                "SELECT run_id FROM runs WHERE status='pending' AND not_before<=? "
                + filter_sql
                + " ORDER BY created_at, run_id LIMIT 1",
                (time.time(), *filter_args),
            ).fetchone()
            if row is None:
                self._conn.execute("ROLLBACK")
                return None
            self._conn.execute(
                "UPDATE runs SET status='running', worker=?, attempts=attempts+1, "
                "started_at=?, error=NULL WHERE run_id=?",
                (worker, time.time(), row["run_id"]),
            )
            self._conn.execute("COMMIT")
        except sqlite3.OperationalError:
            # the BEGIN IMMEDIATE lost a lock race; treat as nothing to do
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            return None
        return self.get(row["run_id"])

    @staticmethod
    def _experiment_filter(
        names: Optional[List[str]],
    ) -> Tuple[str, Tuple[Any, ...]]:
        if not names:
            return "", ()
        placeholders = ",".join("?" for _ in names)
        return f" AND experiment IN ({placeholders})", tuple(names)

    # ----------------------------------------------------------- finishing
    def finish(
        self,
        run_id: str,
        result: PointResult,
        wall_time_s: float,
        provenance: Dict[str, Any],
    ) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE runs SET status='done', scalars=?, checks=?, "
                "metrics=?, wall_time_s=?, git_sha=?, package_version=?, "
                "calibration_hash=?, finished_at=?, error=NULL "
                "WHERE run_id=?",
                (
                    canonical_json(result.scalars),
                    canonical_json(result.checks),
                    canonical_json(result.metrics)
                    if result.metrics is not None
                    else None,
                    wall_time_s,
                    provenance.get("git_sha"),
                    provenance.get("package_version"),
                    provenance.get("calibration_hash"),
                    time.time(),
                    run_id,
                ),
            )

    def fail(
        self,
        run_id: str,
        error: str,
        retry_not_before: Optional[float] = None,
        wall_time_s: Optional[float] = None,
    ) -> None:
        """Record a failure: back to ``pending`` for retry, else ``error``."""
        status = "pending" if retry_not_before is not None else "error"
        with self._conn:
            self._conn.execute(
                "UPDATE runs SET status=?, error=?, not_before=?, "
                "wall_time_s=?, finished_at=? WHERE run_id=?",
                (
                    status,
                    error[:4000],
                    retry_not_before if retry_not_before is not None else 0,
                    wall_time_s,
                    time.time(),
                    run_id,
                ),
            )

    # ------------------------------------------------------------ resetting
    def reset_running(self, experiments: Optional[Iterable[str]] = None) -> int:
        """Reclaim rows left ``running`` by a killed pool (crash resume)."""
        filter_sql, filter_args = self._experiment_filter(
            list(experiments) if experiments else None
        )
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET status='pending', worker=NULL, not_before=0 "
                "WHERE status='running'" + filter_sql,
                filter_args,
            )
        return cursor.rowcount

    def reset_errors(self, experiments: Optional[Iterable[str]] = None) -> int:
        """``lab retry``: make every ``error`` row claimable again."""
        filter_sql, filter_args = self._experiment_filter(
            list(experiments) if experiments else None
        )
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET status='pending', attempts=0, not_before=0 "
                "WHERE status='error'" + filter_sql,
                filter_args,
            )
        return cursor.rowcount

    # ------------------------------------------------------------- querying
    def get(self, run_id: str) -> Optional[RunRecord]:
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id=?", (run_id,)
        ).fetchone()
        return RunRecord.from_row(row) if row else None

    def records(
        self,
        experiment: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[RunRecord]:
        sql = "SELECT * FROM runs WHERE 1=1"
        args: List[Any] = []
        if experiment is not None:
            sql += " AND experiment=?"
            args.append(experiment)
        if status is not None:
            sql += " AND status=?"
            args.append(status)
        sql += " ORDER BY experiment, created_at, run_id"
        return [RunRecord.from_row(row) for row in self._conn.execute(sql, args)]

    def counts(
        self, experiments: Optional[Iterable[str]] = None
    ) -> Dict[str, Dict[str, int]]:
        """``experiment -> {status -> count}`` (zero-filled statuses)."""
        filter_sql, filter_args = self._experiment_filter(
            list(experiments) if experiments else None
        )
        result: Dict[str, Dict[str, int]] = {}
        for row in self._conn.execute(
            "SELECT experiment, status, COUNT(*) AS n FROM runs WHERE 1=1"
            + filter_sql
            + " GROUP BY experiment, status",
            filter_args,
        ):
            per = result.setdefault(
                row["experiment"], {status: 0 for status in STATUSES}
            )
            per[row["status"]] = row["n"]
        return result

    def totals(self, experiments: Optional[Iterable[str]] = None) -> Dict[str, int]:
        totals = {status: 0 for status in STATUSES}
        for per in self.counts(experiments).values():
            for status, count in per.items():
                totals[status] += count
        return totals

    def mean_wall_time(
        self, experiments: Optional[Iterable[str]] = None
    ) -> Optional[float]:
        filter_sql, filter_args = self._experiment_filter(
            list(experiments) if experiments else None
        )
        row = self._conn.execute(
            "SELECT AVG(wall_time_s) AS mean FROM runs "
            "WHERE status='done' AND wall_time_s IS NOT NULL" + filter_sql,
            filter_args,
        ).fetchone()
        return row["mean"]
