"""The registry of prebuilt grids.

Each factory returns an :class:`~repro.lab.grid.ExperimentGrid` whose
driver is a dotted path into :mod:`repro.lab.drivers`.  These are the
single source of truth for the sweep points: the CLI (``python -m repro
lab run <name>``) executes them through the store/worker machinery, and
``benchmarks/test_ablation_*.py`` iterate the very same points
in-process — so a point added here shows up in both.

``quick=True`` shrinks sample counts for smoke runs; because a point's
run id hashes its parameters, quick and full results never collide in
the store.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .grid import ExperimentGrid

GridFactory = Callable[[bool], ExperimentGrid]

GRID_FACTORIES: Dict[str, GridFactory] = {}


def register_grid(name: str) -> Callable[[GridFactory], GridFactory]:
    def decorate(factory: GridFactory) -> GridFactory:
        GRID_FACTORIES[name] = factory
        return factory

    return decorate


def available_grids() -> List[str]:
    return sorted(GRID_FACTORIES)


def get_grid(name: str, quick: bool = False) -> ExperimentGrid:
    try:
        factory = GRID_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown grid {name!r}; available: {', '.join(available_grids())}"
        ) from None
    return factory(quick)


def get_grids(names: Sequence[str], quick: bool = False) -> List[ExperimentGrid]:
    return [get_grid(name, quick) for name in (names or available_grids())]


# ----------------------------------------------------------- the exhibits
@register_grid("exhibits")
def exhibits_grid(quick: bool = False) -> ExperimentGrid:
    """All 15 paper exhibits, one point each (Figs 1–16, Tables 1–2)."""
    from ..analysis.report import EXHIBIT_ORDER

    return ExperimentGrid(
        name="exhibits",
        driver="repro.lab.drivers:run_exhibit",
        domains={"exhibit": list(EXHIBIT_ORDER)},
        base={"quick": quick},
        description="every paper exhibit driver, checks recorded per point",
    )


# ------------------------------------------------------------ the traffic
@register_grid("traffic-scenarios")
def traffic_scenarios_grid(quick: bool = False) -> ExperimentGrid:
    """Every registered traffic scenario once, on the functional testbed."""
    from ..traffic import available_scenarios

    scenarios = available_scenarios()
    if quick:
        scenarios = [s for s in scenarios if s not in ("churn",)]
    return ExperimentGrid(
        name="traffic-scenarios",
        driver="repro.lab.drivers:traffic_scenario_point",
        domains={"scenario": scenarios},
        base={"backend": "functional", "audit": True},
        description="each traffic scenario end-to-end, invariants audited",
    )


@register_grid("traffic-load")
def traffic_load_grid(quick: bool = False) -> ExperimentGrid:
    """Offered-load sweep of the rpc scenario on the calibrated model."""
    return ExperimentGrid(
        name="traffic-load",
        driver="repro.lab.drivers:traffic_scenario_point",
        domains={
            "load_scale": [1.0, 4.0, 12.0] if quick
            else [0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0],
        },
        base={"scenario": "rpc", "backend": "model"},
        description="latency-vs-load curve points (model backend, dense)",
    )


@register_grid("churn-rate")
def churn_rate_grid(quick: bool = False) -> ExperimentGrid:
    """Connections/s vs churn concurrency (per-request lifecycle)."""
    return ExperimentGrid(
        name="churn-rate",
        driver="repro.lab.drivers:traffic_churn_point",
        domains={"concurrency": [1, 2, 4, 8]},
        base={"connections": 6 if quick else 12},
        description="short-connection churn rate scales with concurrency",
    )


# ------------------------------------------------------------- the fabric
@register_grid("fabric-incast")
def fabric_incast_grid(quick: bool = False) -> ExperimentGrid:
    """Incast on the F4T backend across fan-in sizes (``repro.fabric``)."""
    return ExperimentGrid(
        name="fabric-incast",
        driver="repro.lab.drivers:fabric_point",
        domains={"num_hosts": [4] if quick else [4, 8, 12]},
        base={"scenario": "incast", "backend": "f4t", "seed": 0},
        description="N-1 responses collide at one egress port; goodput, "
        "p99 and switch drops vs fan-in (model-backed switch)",
    )


@register_grid("fabric-backends")
def fabric_backends_grid(quick: bool = False) -> ExperimentGrid:
    """All four offload backends head-to-head on the incast fabric."""
    from ..fabric import available_backends

    return ExperimentGrid(
        name="fabric-backends",
        driver="repro.lab.drivers:fabric_point",
        domains={"backend": list(available_backends())},
        base={
            "scenario": "incast",
            "num_hosts": 4 if quick else 8,
            "seed": 0,
        },
        description="f4t vs flextoe vs pno vs linux_stack on one incast "
        "(f4t paper-backed, soft backends model-backed)",
    )


@register_grid("shard-workers")
def shard_workers_grid(quick: bool = False) -> ExperimentGrid:
    """The churn shard at 1/2/4 workers (``repro.shard``).

    Every row must land on the same ``fingerprint_prefix`` — the grid
    is the persisted form of ``repro shard sweep``'s worker-count
    determinism check, with wall time and RSS alongside.
    """
    return ExperimentGrid(
        name="shard-workers",
        driver="repro.lab.drivers:shard_point",
        domains={"workers": [1, 2] if quick else [1, 2, 4]},
        base={"scenario": "churn", "seed": 0},
        description="merged fingerprint is worker-count invariant; "
        "wall time and per-worker RSS vs process count",
    )


# ---------------------------------------------------------- the ablations
@register_grid("ablation-coalescing")
def ablation_coalescing_grid(quick: bool = False) -> ExperimentGrid:
    """Event coalescing on/off for bulk same-flow traffic (§4.4.1)."""
    return ExperimentGrid(
        name="ablation-coalescing",
        driver="repro.lab.drivers:ablation_header_point",
        domains={"coalescing": [True, False]},
        base={
            "num_fpcs": 1,
            "workload": "bulk",
            "cycles": 4_000 if quick else 10_000,
        },
        description="coalescing lifts same-flow bulk past the 125M FPC limit",
    )


@register_grid("ablation-fpc-count")
def ablation_fpc_count_grid(quick: bool = False) -> ExperimentGrid:
    """Different-flow throughput vs FPC count (§4.4.2)."""
    return ExperimentGrid(
        name="ablation-fpc-count",
        driver="repro.lab.drivers:ablation_header_point",
        domains={"num_fpcs": [1, 2, 4, 8]},
        base={
            "coalescing": False,
            "workload": "rr",
            "offered": 1.2e9,
            "cycles": 4_000 if quick else 10_000,
        },
        description="round-robin event rate scales with FPCs to the routing cap",
    )


@register_grid("ablation-coalesce-depth")
def ablation_coalesce_depth_grid(quick: bool = False) -> ExperimentGrid:
    """Merge rate vs offered bulk load on the coalesce FIFOs (§4.4.1)."""
    return ExperimentGrid(
        name="ablation-coalesce-depth",
        driver="repro.lab.drivers:ablation_header_point",
        domains={"offered": [100e6, 300e6, 600e6, 928e6]},
        base={
            "num_fpcs": 1,
            "coalescing": True,
            "workload": "bulk",
            "flows": 24,
            "cycles": 3_000 if quick else 8_000,
        },
        description="deeper backlogs merge more; consumed tracks offered",
    )


@register_grid("ablation-mss")
def ablation_mss_grid(quick: bool = False) -> ExperimentGrid:
    """Functional goodput vs maximum segment size (78 B overhead, §5.1)."""
    return ExperimentGrid(
        name="ablation-mss",
        driver="repro.lab.drivers:ablation_mss_point",
        domains={"mss": [256, 512, 1460]},
        base={"total_bytes": 100_000 if quick else 300_000},
        description="goodput tracks link.max_goodput_gbps(mss) across MSS",
    )


@register_grid("ablation-tcb-cache")
def ablation_tcb_cache_grid(quick: bool = False) -> ExperimentGrid:
    """Memory-manager TCB cache size vs DRAM swap rate (§4.3.1)."""
    return ExperimentGrid(
        name="ablation-tcb-cache",
        driver="repro.lab.drivers:ablation_tcb_cache_point",
        domains={"cache_entries": [64, 512, 4096]},
        base={"flows": 4096, "transactions": 500 if quick else 2000},
        description="a covering cache turns swaps into bare write-backs",
    )


@register_grid("ablation-matrix")
def ablation_matrix_grid(quick: bool = False) -> ExperimentGrid:
    """The 12-point scheduler/FPC design matrix (FlexTOE-style sweep).

    FPC count x coalescing x workload — every intermediate design of
    Fig 16b plus the combinations the paper skips, in one grid.  This is
    the showcase sweep for parallel execution: 12 independent
    cycle-simulation points.
    """
    return ExperimentGrid(
        name="ablation-matrix",
        driver="repro.lab.drivers:ablation_header_point",
        domains={
            "num_fpcs": [1, 2, 8],
            "coalescing": [False, True],
            "workload": ["bulk", "rr"],
        },
        base={"cycles": 3_000 if quick else 10_000},
        description="FPC count x coalescing x workload, 12 points",
    )


@register_grid("mem-geometry")
def mem_geometry_grid(quick: bool = False) -> ExperimentGrid:
    """TCB cache geometry x sketch width x churn (repro.mem).

    The replay-level ablation behind the ROADMAP's million-flow memory
    question: which cache organisation (and how much sketch state)
    beats the paper's direct-mapped cache once connections churn.
    """
    return ExperimentGrid(
        name="mem-geometry",
        driver="repro.lab.drivers:mem_point",
        domains={
            "geometry": [
                "512x1:direct",
                "128x4:lru",
                "128x4:slru",
                "128x4:freq",
                "64x4:lru/256x1:direct",
            ],
            "sketch_width": [256, 1024],
            "churn": [0.2, 0.6],
        },
        base={"events": 4_000 if quick else 20_000},
        description="cache organisation vs DRAM charges under churn",
    )
