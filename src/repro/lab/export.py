"""Export a grid's run rows as CSV or aligned Markdown.

Both exports use one flattened view of the store: a row per run, with
the union of parameter names and scalar names as columns, plus status,
wall time and the provenance fields.  The Markdown renderer reuses the
reporting layer's column alignment so exported tables match the look of
the per-exhibit report.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.reporting import render_markdown_table, render_table
from .store import RunRecord, RunStore

#: Trailing bookkeeping columns, in export order.
_META_COLUMNS = [
    "status",
    "attempts",
    "wall_time_s",
    "git_sha",
    "package_version",
    "calibration_hash",
    "error",
]


def _flatten(
    records: Sequence[RunRecord],
) -> Tuple[List[str], List[List[Any]]]:
    """``(columns, rows)`` for a set of run records."""
    param_names = sorted({name for r in records for name in r.params})
    scalar_names = sorted({name for r in records for name in r.scalars})
    columns = (
        ["run_id", "experiment", "seed"]
        + param_names
        + scalar_names
        + _META_COLUMNS
    )
    rows: List[List[Any]] = []
    for record in records:
        row: List[Any] = [
            record.run_id,
            record.experiment,
            record.seed if record.seed is not None else "",
        ]
        row += [record.params.get(name, "") for name in param_names]
        row += [record.scalars.get(name, "") for name in scalar_names]
        sha = (record.git_sha or "")[:12]
        row += [
            record.status,
            record.attempts,
            round(record.wall_time_s, 3) if record.wall_time_s is not None else "",
            sha,
            record.package_version or "",
            record.calibration_hash or "",
            (record.error or "").splitlines()[0][:80] if record.error else "",
        ]
        rows.append(row)
    return columns, rows


def _select(
    store: RunStore, experiment: Optional[str], status: Optional[str]
) -> List[RunRecord]:
    return store.records(experiment=experiment, status=status)


def export_csv(
    store: RunStore,
    experiment: Optional[str] = None,
    status: Optional[str] = None,
) -> str:
    """The flattened view as CSV text."""
    columns, rows = _flatten(_select(store, experiment, status))
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    writer.writerows(rows)
    return buffer.getvalue()


def export_markdown(
    store: RunStore,
    experiment: Optional[str] = None,
    status: Optional[str] = None,
) -> str:
    """The flattened view as an aligned GitHub-Markdown table."""
    columns, rows = _flatten(_select(store, experiment, status))
    return render_markdown_table(columns, rows)


def export_text(
    store: RunStore,
    experiment: Optional[str] = None,
    status: Optional[str] = None,
) -> str:
    """The flattened view as the report-style aligned plain-text table."""
    columns, rows = _flatten(_select(store, experiment, status))
    return render_table(columns, rows)


def status_table(store: RunStore, markdown: bool = False) -> str:
    """Per-experiment per-state counts, the ``lab status`` body."""
    counts = store.counts()
    columns = ["experiment", "pending", "running", "done", "error", "total"]
    rows = []
    for experiment in sorted(counts):
        per: Dict[str, int] = counts[experiment]
        rows.append(
            [
                experiment,
                per["pending"],
                per["running"],
                per["done"],
                per["error"],
                sum(per.values()),
            ]
        )
    if len(rows) > 1:
        totals = store.totals()
        rows.append(
            ["TOTAL", totals["pending"], totals["running"], totals["done"],
             totals["error"], sum(totals.values())]
        )
    renderer = render_markdown_table if markdown else render_table
    return renderer(columns, rows)
