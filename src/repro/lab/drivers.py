"""Importable driver functions for the prebuilt grids.

Every function here is a *point driver*: it computes one grid point from
keyword parameters and returns either a flat mapping of scalar names to
numbers or a full :class:`~repro.analysis.reporting.ExperimentResult`
(the exhibit wrapper does the latter, so paper-vs-measured checks land
in the store too).  Workers resolve these by dotted path
(``repro.lab.drivers:ablation_mss_point``), which is why they live at
module level and take only plain, JSON-representable parameters.

The ablation drivers are the single definition of each ablation sweep's
*measurement*; the sweep's *points* live in :mod:`repro.lab.grids`, and
``benchmarks/test_ablation_*.py`` consume both — model and bench share
one definition.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.reporting import ExperimentResult


# --------------------------------------------------------------- exhibits
def run_exhibit(exhibit: str, quick: bool = False) -> ExperimentResult:
    """One paper exhibit (``table1`` … ``figure16b``) as a grid point."""
    from ..analysis.report import _QUICKABLE
    from ..analysis.experiments import ALL_EXPERIMENTS

    driver = ALL_EXPERIMENTS[exhibit]
    if quick and exhibit in _QUICKABLE:
        return driver(quick=True)
    return driver()


# ------------------------------------------------- ablation: header rates
def ablation_header_point(
    num_fpcs: int,
    coalescing: bool,
    workload: str = "bulk",
    offered: Optional[float] = None,
    flows: Optional[int] = None,
    cycles: int = 10_000,
) -> Dict[str, float]:
    """Consumed header-event rate of one scheduler/FPC design point.

    This is the common measurement behind the coalescing, FPC-count and
    coalesce-depth ablations (Fig 16b's axes, swept independently).
    ``offered`` defaults to the paper's 24-core submission rate for the
    workload; ``flows`` defaults to the bench conventions (24 same-flow
    streams for bulk, 48 flows per FPC for round-robin).
    """
    from ..analysis.microbench import HeaderRateDesign, measure_header_rate
    from ..host.calibration import F4T_HEADER_OFFERED_BULK, F4T_HEADER_OFFERED_RR

    if offered is None:
        offered = (
            F4T_HEADER_OFFERED_BULK if workload == "bulk" else F4T_HEADER_OFFERED_RR
        )
    if flows is None:
        flows = 24 if workload == "bulk" else 48 * num_fpcs
    design = HeaderRateDesign(
        f"{num_fpcs}FPC{'-C' if coalescing else ''}",
        num_fpcs=num_fpcs,
        coalescing=coalescing,
    )
    rate = measure_header_rate(design, workload, offered, flows, cycles=cycles)
    return {"rate": rate, "offered": offered, "absorbed": min(1.0, rate / offered)}


# --------------------------------------------------- ablation: MSS sweep
def ablation_mss_point(mss: int, total_bytes: int = 300_000) -> Dict[str, float]:
    """Functional goodput at one MSS, plus its closed-form wire ceiling."""
    from ..engine.ftengine import FtEngineConfig
    from ..engine.testbed import Testbed
    from ..net.link import LINK_100G

    testbed = Testbed(
        config_a=FtEngineConfig(mss=mss), config_b=FtEngineConfig(mss=mss)
    )
    a_flow, b_flow = testbed.establish()
    start = testbed.now_s
    sent = {"n": 0, "received": 0}
    payload = bytes(16384)

    def pump() -> bool:
        if sent["n"] < total_bytes:
            sent["n"] += testbed.engine_a.send_data(a_flow, payload)
        readable = testbed.engine_b.readable(b_flow)
        if readable:
            testbed.engine_b.recv_data(b_flow, readable)
            sent["received"] += readable
        return sent["received"] >= total_bytes

    if not testbed.run(until=pump, max_time_s=start + 5.0):
        raise RuntimeError(f"mss={mss}: transfer did not finish in simulated time")
    goodput_gbps = total_bytes * 8 / (testbed.now_s - start) / 1e9
    ceiling = LINK_100G.max_goodput_gbps(mss)
    return {
        "goodput_gbps": goodput_gbps,
        "ceiling_gbps": ceiling,
        "wire_efficiency": goodput_gbps / ceiling,
    }


# -------------------------------------------------- traffic: scenario runs
def traffic_scenario_point(
    scenario: str,
    seed: int = 0,
    load_scale: float = 1.0,
    backend: str = "functional",
    audit: bool = True,
) -> "PointResult":
    """One traffic scenario at one offered-load scale, either backend.

    Returns a :class:`~repro.lab.grid.PointResult` whose ``metrics``
    field carries the full labeled snapshot (engine counters, per-class
    traffic histograms), so ``lab`` runs persist the whole picture, not
    just the headline scalars.
    """
    import json

    from ..lab.grid import PointResult
    from ..obs import MetricsRegistry, collect_scenario_result, collect_traced_run
    from ..traffic import LoadEngine, get_scenario, run_scenario_model

    sc = get_scenario(scenario, seed=seed)
    if backend == "model":
        result = run_scenario_model(sc, load_scale=load_scale)
        registry = MetricsRegistry()
        collect_scenario_result(registry, result)
    else:
        from ..fabric.backend import get_backend

        spec = get_backend(backend)
        engine = LoadEngine(
            sc,
            load_scale=load_scale,
            # The invariant monitor reads FtEngine internals; soft
            # backends run unaudited.
            audit=audit and spec.kind == "engine",
            backend=spec.name,
        )
        result = engine.run()
        if spec.kind == "engine":
            registry = collect_traced_run(engine.testbed, result)
        else:
            registry = MetricsRegistry()
            collect_scenario_result(registry, result)
    scalars: Dict[str, float] = {
        "offered": result.offered,
        "completed": result.completed,
        "offered_rps": result.offered_rps,
        "achieved_rps": result.achieved_rps,
        "goodput_gbps": result.goodput_gbps,
        "p50_us": result.p50_s * 1e6,
        "p99_us": result.p99_s * 1e6,
        "frames_dropped": result.frames_dropped,
        "violations": len(result.violations),
        "finished": int(result.finished),
    }
    for name, metrics in result.classes.items():
        scalars[f"{name}_achieved_rps"] = metrics.achieved_rps
        scalars[f"{name}_p99_us"] = metrics.p99_s * 1e6
    return PointResult(
        scalars=scalars, metrics=json.loads(registry.snapshot().to_json())
    )


def traffic_churn_point(
    connections: int,
    concurrency: int,
    request_bytes: int = 64,
) -> Dict[str, float]:
    """Connection churn rate at one concurrency level."""
    from ..apps.shortconn import run_connection_churn

    result = run_connection_churn(
        connections=connections,
        concurrency=concurrency,
        request_bytes=request_bytes,
    )
    return {
        "connections_per_s": result.connections_per_s,
        "connections_completed": result.connections_completed,
        "lifecycle_median_ms": result.lifecycle_latencies.median * 1e3,
        "lifecycle_p99_ms": result.lifecycle_latencies.p99 * 1e3,
        "elapsed_s": result.elapsed_s,
    }


# ------------------------------------------------- fabric: multi-host runs
def fabric_point(
    scenario: str,
    backend: str = "f4t",
    num_hosts: Optional[int] = None,
    seed: Optional[int] = None,
    load_scale: float = 1.0,
    max_time_s: float = 0.25,
) -> Dict[str, float]:
    """One fabric scenario on one offload backend (``repro.fabric``).

    Model-backed for the soft backends, engine-backed for ``f4t``; the
    scalars are the sweep-table columns plus switch-side counters, so a
    persisted grid row is one line of the backend comparison.
    """
    from ..fabric import get_fabric_scenario, run_fabric

    sc = get_fabric_scenario(scenario, num_hosts=num_hosts, seed=seed)
    result = run_fabric(
        sc, backend=backend, load_scale=load_scale, max_time_s=max_time_s
    )
    scalars: Dict[str, float] = {"finished": int(result.finished)}
    scalars.update(result.scalars())
    return scalars


# -------------------------------------------- shard: multi-process cells
def shard_point(
    scenario: str = "churn",
    workers: int = 1,
    seed: Optional[int] = None,
    dry: bool = False,
) -> Dict[str, float]:
    """One sharded lockstep run (``repro.shard``) at one worker count.

    ``fingerprint_prefix`` is the first 12 hex digits of the merged
    trace digest packed into a float-safe integer — rows of a
    worker-count sweep must all carry the same value (the lab-table
    form of ``repro shard sweep``'s determinism check).
    """
    from ..shard import get_shard_scenario, run_shard

    sc = get_shard_scenario(scenario, seed=seed)
    if dry:
        sc = sc.scaled(128)
    result = run_shard(sc, workers=workers, fingerprint=True)
    scalars: Dict[str, float] = {
        "finished": int(result.finished),
        "epochs": result.epochs,
        "peak_concurrent": result.peak_concurrent,
        "elapsed_s": result.elapsed_s,
        "max_worker_rss_kb": result.max_worker_rss_kb,
        "conns_established": result.total("conns_established"),
        "txns_completed": result.total("txns_completed"),
        "dropped": result.total("dropped"),
        "retransmits": result.total("retransmits"),
    }
    if result.fingerprint:
        scalars["fingerprint_prefix"] = int(result.fingerprint[:12], 16)
    return scalars


# ---------------------------------------------- ablation: TCB cache sweep
def ablation_tcb_cache_point(
    cache_entries: int,
    flows: int = 4096,
    transactions: int = 2000,
    memory: str = "ddr4",
) -> Dict[str, float]:
    """DRAM swap-transaction rate for one TCB-cache size."""
    from ..apps.echo import measure_dram_swap_rate

    rate = measure_dram_swap_rate(
        memory, flows=flows, transactions=transactions, cache_entries=cache_entries
    )
    return {"swap_rate": rate}


# ------------------------------------------------- repro.mem: cache sweep
def mem_point(
    geometry: str = "512x1:direct",
    sketch_width: int = 1024,
    churn: float = 0.3,
    events: int = 20_000,
    seed: int = 1234,
) -> Dict[str, float]:
    """One repro.mem cache-geometry replay point (numeric scalars only).

    The geometry string itself is already in the grid's parameters, so
    only the numeric columns (hit rate, DRAM charges, per-level stats,
    sketch accuracy) go into the result row.
    """
    from ..mem.sweep import run_mem_point

    row = run_mem_point(
        geometry=geometry,
        sketch_width=sketch_width,
        churn=churn,
        events=events,
        seed=seed,
    )
    return {
        key: float(value)
        for key, value in row.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
