"""Experiment grids: a driver callable plus a parameter space.

An :class:`ExperimentGrid` names a driver (a dotted ``module:function``
path, so worker processes can re-resolve it without pickling code), a
parameter space (cartesian ``domains``, explicit ``points``, optional
``seeds``), and expands into :class:`GridPoint` instances.  Each point's
``run_id`` is a content hash of everything that defines the computation
— experiment name, driver path, parameters, seed — so re-declaring the
same grid always maps onto the same store rows (that is what makes
resume and incremental caching work), while changing any parameter
yields a fresh id.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import subprocess
import time
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..analysis.reporting import ExperimentResult


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def content_hash(payload: Mapping[str, Any], length: int = 16) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:length]


def driver_path(driver: Callable[..., Any]) -> str:
    """The importable ``module:qualname`` path of a driver callable."""
    return f"{driver.__module__}:{driver.__qualname__}"


def resolve_driver(path: str) -> Callable[..., Any]:
    """Inverse of :func:`driver_path`; raises ImportError/AttributeError."""
    module_name, _, qualname = path.partition(":")
    if not qualname:
        raise ValueError(f"driver path {path!r} is not 'module:function'")
    target: Any = import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    if not callable(target):
        raise TypeError(f"driver {path!r} resolved to non-callable {target!r}")
    return target


@dataclass(frozen=True)
class GridPoint:
    """One concrete run: resolved parameters plus its stable identity."""

    experiment: str
    driver: str
    params: Mapping[str, Any]
    seed: Optional[int] = None

    @property
    def run_id(self) -> str:
        return content_hash(
            {
                "experiment": self.experiment,
                "driver": self.driver,
                "params": dict(self.params),
                "seed": self.seed,
            }
        )

    def kwargs(self) -> Dict[str, Any]:
        """The keyword arguments the driver is called with."""
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs


@dataclass
class PointResult:
    """A driver's normalized output: numeric scalars + optional checks."""

    scalars: Dict[str, float]
    #: name -> {"paper", "measured", "tolerance", "passes"}
    checks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Optional :class:`~repro.obs.metrics.MetricsSnapshot` rows
    #: (``[{"name", "kind", "labels", "value"}, ...]``) — the full
    #: labeled-metric view of the run, persisted alongside scalars.
    metrics: Optional[List[Dict[str, Any]]] = None

    @property
    def all_checks_pass(self) -> bool:
        return all(check["passes"] for check in self.checks.values())

    def metrics_snapshot(self) -> Optional["Any"]:
        """Decode :attr:`metrics` back into a MetricsSnapshot, if present."""
        if self.metrics is None:
            return None
        from ..obs.metrics import MetricsSnapshot

        return MetricsSnapshot.from_json(json.dumps(self.metrics))


def normalize_result(value: Any) -> PointResult:
    """Coerce a driver's return value into a :class:`PointResult`.

    Drivers may return an :class:`~repro.analysis.reporting.ExperimentResult`
    (the exhibit drivers do) or a flat mapping of scalar names to numbers
    (the ablation point drivers do).
    """
    if isinstance(value, PointResult):
        return value
    if isinstance(value, ExperimentResult):
        scalars = {name: float(check.measured) for name, check in value.checks.items()}
        checks = {
            name: {
                "paper": float(check.paper),
                "measured": float(check.measured),
                "tolerance": float(check.tolerance),
                "passes": bool(check.passes),
            }
            for name, check in value.checks.items()
        }
        return PointResult(scalars=scalars, checks=checks)
    if isinstance(value, Mapping):
        scalars: Dict[str, float] = {}
        for name, scalar in value.items():
            if isinstance(scalar, bool) or not isinstance(scalar, (int, float)):
                raise TypeError(
                    f"driver scalar {name!r} is {type(scalar).__name__}, "
                    "expected int/float (return an ExperimentResult for "
                    "anything richer)"
                )
            scalars[str(name)] = float(scalar)
        return PointResult(scalars=scalars)
    raise TypeError(
        f"driver returned {type(value).__name__}; expected ExperimentResult "
        "or a mapping of scalar names to numbers"
    )


@dataclass
class ExperimentGrid:
    """A named experiment: one driver, many parameter points.

    ``domains`` expands as a cartesian product; ``points`` adds explicit
    parameter dicts verbatim; ``seeds`` replicates every point once per
    seed (the seed is passed to the driver as a ``seed=`` keyword and
    folded into the run id).  ``base`` holds parameters shared by every
    point (a point may override them).
    """

    name: str
    driver: str  # "module:function"; use driver_path() for callables
    domains: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    points: Sequence[Mapping[str, Any]] = field(default_factory=list)
    base: Mapping[str, Any] = field(default_factory=dict)
    seeds: Optional[Sequence[int]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if callable(self.driver):  # convenience: accept the function itself
            self.driver = driver_path(self.driver)

    def _raw_points(self) -> Iterable[Dict[str, Any]]:
        if self.domains:
            names = list(self.domains)
            for values in itertools.product(*(self.domains[n] for n in names)):
                yield dict(zip(names, values))
        for explicit in self.points:
            yield dict(explicit)
        if not self.domains and not self.points:
            yield {}  # a single-point experiment: just the base params

    def expand(self) -> List[GridPoint]:
        """Every concrete point of the grid, in a stable order."""
        expanded: List[GridPoint] = []
        seen: set = set()
        for raw in self._raw_points():
            params = {**self.base, **raw}
            for seed in self.seeds if self.seeds is not None else (None,):
                point = GridPoint(
                    experiment=self.name,
                    driver=self.driver,
                    params=params,
                    seed=seed,
                )
                if point.run_id not in seen:  # overlapping domains/points
                    seen.add(point.run_id)
                    expanded.append(point)
        return expanded

    def call(self, point: GridPoint) -> PointResult:
        """Execute one point in-process (the benches use this directly)."""
        driver = resolve_driver(point.driver)
        return normalize_result(driver(**point.kwargs()))


# ------------------------------------------------------------- provenance
def _git_sha() -> str:
    import os

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
            # resolve the checkout this code was imported from, not the cwd
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"


def calibration_fingerprint() -> str:
    """Content hash of every calibrated constant the models depend on.

    Folded into each run row's provenance so results can be compared
    across commits: if a calibration constant moves, rows recorded
    before and after are distinguishable even at the same git sha
    (dirty trees) — and identical fingerprints mean the analytic model
    inputs were identical.
    """
    from ..host import calibration

    constants = {
        name: repr(value)
        for name, value in vars(calibration).items()
        if name.isupper()
    }
    return content_hash(constants, length=12)


_PROVENANCE_CACHE: Optional[Dict[str, Any]] = None


def provenance(seed: Optional[int] = None) -> Dict[str, Any]:
    """The provenance fields recorded on every finished run row."""
    global _PROVENANCE_CACHE
    if _PROVENANCE_CACHE is None:
        import repro

        _PROVENANCE_CACHE = {
            "git_sha": _git_sha(),
            "package_version": repro.__version__,
            "calibration_hash": calibration_fingerprint(),
        }
    record = dict(_PROVENANCE_CACHE)
    record["seed"] = seed
    record["recorded_at"] = time.time()
    return record
