"""The worker pool: claim pending runs, execute, retry, resume.

:func:`run_grid` is the one entry point.  It syncs the grid(s) into the
store (content-hash run ids make this idempotent: points already
``done`` are cache hits and never re-execute), reclaims rows left
``running`` by a previously killed pool, then executes every claimable
row — in-process when ``workers <= 1``, else on a ``multiprocessing``
pool where each worker owns its own SQLite connection and pulls open
runs PyExperimenter-style until none remain.

Per-run limits:

* **timeout** — enforced with ``SIGALRM`` in the executing process, so a
  wedged driver cannot stall the sweep;
* **retries** — any transient failure (including a timeout) sends the
  row back to ``pending`` with a capped exponential ``not_before``
  backoff; import/signature errors are permanent and go straight to
  ``error``;
* **progress** — the orchestrator streams a ``done/total`` line with an
  ETA extrapolated from the mean wall time of finished runs.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO, Union

from .grid import ExperimentGrid, normalize_result, provenance, resolve_driver
from .store import RunRecord, RunStore

#: Exceptions that retrying cannot fix: the driver itself is broken.
_PERMANENT = (ImportError, AttributeError, TypeError, SyntaxError)


class RunTimeout(Exception):
    """A driver exceeded the per-run timeout."""


@dataclass
class RunOptions:
    """Per-run execution limits shared by every worker."""

    timeout_s: Optional[float] = 300.0
    max_retries: int = 2
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0
    poll_s: float = 0.1

    def backoff(self, attempts: int) -> float:
        return min(self.backoff_cap_s, self.backoff_base_s * 2 ** max(0, attempts - 1))


@dataclass
class GridRunReport:
    """What a :func:`run_grid` call did, for the CLI and the tests."""

    experiments: List[str]
    total: int
    cached: int  # already done before this invocation
    executed: int = 0
    done: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    totals: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.errors == 0 and self.totals.get("pending", 0) == 0


# ------------------------------------------------------------ one run
@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`RunTimeout` after ``seconds`` (main thread only)."""
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(_signum: int, _frame: Any) -> None:
        raise RunTimeout(f"run exceeded the {seconds:.1f}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_claimed(store: RunStore, record: RunRecord, options: RunOptions) -> bool:
    """Run one claimed row to ``done``/``pending``(retry)/``error``.

    Returns True when the row finished ``done``.
    """
    start = time.monotonic()
    try:
        driver = resolve_driver(record.driver)
        with _deadline(options.timeout_s):
            result = normalize_result(driver(**record.point().kwargs()))
    except BaseException as exc:
        if not isinstance(exc, Exception):  # KeyboardInterrupt, SystemExit
            store.fail(record.run_id, f"interrupted: {exc!r}")
            raise
        wall = time.monotonic() - start
        message = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        transient = not isinstance(exc, _PERMANENT)
        if transient and record.attempts <= options.max_retries:
            store.fail(
                record.run_id,
                message,
                retry_not_before=time.time() + options.backoff(record.attempts),
                wall_time_s=wall,
            )
        else:
            store.fail(record.run_id, message, wall_time_s=wall)
        return False
    store.finish(
        record.run_id,
        result,
        wall_time_s=time.monotonic() - start,
        provenance=provenance(record.seed),
    )
    return True


def _work_loop(
    store: RunStore,
    experiments: Sequence[str],
    options: RunOptions,
    worker: str,
) -> int:
    """Claim-and-execute until the selected experiments have no pending
    rows left (backoff-gated retries included — the loop waits them out).
    """
    executed = 0
    while True:
        record = store.claim(worker, experiments)
        if record is not None:
            executed += 1
            _execute_claimed(store, record, options)
            continue
        if store.totals(experiments)["pending"] == 0:
            return executed
        time.sleep(options.poll_s)


def _worker_main(
    store_path: str,
    experiments: Sequence[str],
    options: RunOptions,
    sys_path: Sequence[str],
) -> None:
    """Entry point of a pool worker process."""
    for entry in sys_path:  # spawn-safety: mirror the parent's import path
        if entry not in sys.path:
            sys.path.insert(0, entry)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the orchestrator decides
    with RunStore(store_path) as store:
        _work_loop(store, experiments, options, worker=f"worker-{os.getpid()}")


# ------------------------------------------------------------ progress
def _progress_line(
    totals: Dict[str, int], total: int, started: float, mean_wall: Optional[float], workers: int
) -> str:
    done = totals["done"]
    remaining = totals["pending"] + totals["running"]
    if mean_wall and remaining:
        eta = f"{mean_wall * remaining / max(1, workers):.0f}s"
    else:
        eta = "?" if remaining else "0s"
    return (
        f"lab: {done}/{total} done, {totals['running']} running, "
        f"{totals['error']} failed, ETA {eta} "
        f"({time.monotonic() - started:.0f}s elapsed)"
    )


class _ProgressPrinter:
    """Stream one status line; ``\\r``-rewritten on a TTY, periodic lines
    otherwise (so CI logs stay readable)."""

    def __init__(self, stream: Optional[TextIO]):
        self.stream = stream
        self.is_tty = bool(stream and stream.isatty())
        self.last_text = ""
        self.last_emit = 0.0

    def update(self, text: str, force: bool = False) -> None:
        if self.stream is None or (text == self.last_text and not force):
            return
        now = time.monotonic()
        if self.is_tty:
            self.stream.write("\r" + text.ljust(len(self.last_text)))
        else:
            if not force and now - self.last_emit < 2.0:
                return
            self.stream.write(text + "\n")
        self.stream.flush()
        self.last_text = text
        self.last_emit = now

    def finish(self, text: str) -> None:
        if self.stream is None:
            return
        if self.is_tty:
            self.stream.write("\r" + text.ljust(len(self.last_text)) + "\n")
        else:
            self.stream.write(text + "\n")
        self.stream.flush()


# ------------------------------------------------------------ run_grid
def _mp_context() -> multiprocessing.context.BaseContext:
    # fork keeps the (already imported) simulator modules without a
    # re-import; fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_grid(
    grids: Union[ExperimentGrid, Sequence[ExperimentGrid]],
    store_path: str,
    workers: int = 1,
    timeout_s: Optional[float] = 300.0,
    max_retries: int = 2,
    backoff_base_s: float = 0.5,
    backoff_cap_s: float = 30.0,
    progress: Optional[TextIO] = None,
) -> GridRunReport:
    """Sync ``grids`` into the store at ``store_path`` and run them.

    Safe to call again after a crash or ^C: rows stuck ``running`` are
    reclaimed, rows already ``done`` are skipped, and only the remaining
    points execute.  Pass ``progress=sys.stderr`` for the live line.
    """
    grid_list = [grids] if isinstance(grids, ExperimentGrid) else list(grids)
    experiments = [grid.name for grid in grid_list]
    options = RunOptions(
        timeout_s=timeout_s,
        max_retries=max_retries,
        backoff_base_s=backoff_base_s,
        backoff_cap_s=backoff_cap_s,
    )
    started = time.monotonic()
    printer = _ProgressPrinter(progress)

    with RunStore(store_path) as store:
        for grid in grid_list:
            store.sync_grid(grid)
        store.reset_running(experiments)
        before = store.totals(experiments)
        total = sum(before.values())
        report = GridRunReport(
            experiments=experiments, total=total, cached=before["done"]
        )

        if workers <= 1:
            while True:
                record = store.claim("worker-serial", experiments)
                if record is not None:
                    report.executed += 1
                    _execute_claimed(store, record, options)
                    printer.update(
                        _progress_line(
                            store.totals(experiments), total, started,
                            store.mean_wall_time(experiments), 1,
                        )
                    )
                    continue
                if store.totals(experiments)["pending"] == 0:
                    break
                time.sleep(options.poll_s)
        else:
            context = _mp_context()
            pool = [
                context.Process(
                    target=_worker_main,
                    args=(store.path, experiments, options, list(sys.path)),
                    name=f"lab-worker-{index}",
                    daemon=True,
                )
                for index in range(workers)
            ]
            for process in pool:
                process.start()
            try:
                while any(process.is_alive() for process in pool):
                    totals = store.totals(experiments)
                    printer.update(
                        _progress_line(
                            totals, total, started, store.mean_wall_time(experiments), workers
                        )
                    )
                    time.sleep(0.2)
                for process in pool:
                    process.join()
            except KeyboardInterrupt:
                for process in pool:
                    process.terminate()
                for process in pool:
                    process.join()
                printer.finish(
                    f"lab: interrupted; rerun to resume "
                    f"({store.totals(experiments)['done']}/{total} done)"
                )
                raise

        after = store.totals(experiments)
        report.totals = after
        report.done = after["done"]
        report.errors = after["error"]
        report.executed = max(report.executed, report.done - report.cached)
        report.elapsed_s = time.monotonic() - started
        printer.finish(
            f"lab: {report.done}/{total} done ({report.cached} cached), "
            f"{report.errors} failed, {report.elapsed_s:.1f}s wall"
        )
        return report
