"""``repro.lab`` — parallel, persistent experiment orchestration.

The repo's per-exhibit drivers and ablation benches are one-shot,
single-process executions.  This package turns any such driver into a
*grid* of runs that can be executed by a worker pool, persisted in a
SQLite store, resumed after a crash, retried on transient failure, and
exported as CSV/Markdown — the PyExperimenter workflow (SNIPPETS.md
§2–3) rebuilt natively for this codebase:

* :mod:`repro.lab.grid` — declare an experiment as a driver callable
  plus a parameter grid; every point gets a stable content-hash run id;
* :mod:`repro.lab.store` — the SQLite run store: status
  (``pending/running/done/error``), parameters, result scalars and
  paper-vs-measured checks, wall time, and provenance (git sha, package
  version, calibration-constants hash, seed);
* :mod:`repro.lab.runner` — a ``multiprocessing`` worker pool that
  claims pending runs transactionally, enforces per-run timeouts,
  retries transient failures with capped backoff, and skips points
  already ``done`` (incremental caching / resume);
* :mod:`repro.lab.export` — CSV and aligned-Markdown dumps of a grid's
  results, reusing :mod:`repro.analysis.reporting`;
* :mod:`repro.lab.drivers` — importable driver functions wrapping the
  exhibit drivers and the ablation micro-benchmarks;
* :mod:`repro.lab.grids` — the registry of prebuilt grids (one per
  exhibit family and ablation bench) shared by the CLI and the benches.

Quick start::

    from repro.lab import ExperimentGrid, RunStore, run_grid

    grid = ExperimentGrid(
        name="mss-sweep",
        driver="repro.lab.drivers:ablation_mss_point",
        domains={"mss": [256, 512, 1460]},
    )
    report = run_grid(grid, "lab.sqlite", workers=4)

or, from the shell::

    python -m repro lab run ablation-mss --workers 4
    python -m repro lab status
    python -m repro lab export ablation-mss --csv mss.csv
"""

from .grid import ExperimentGrid, GridPoint, PointResult, provenance, resolve_driver
from .runner import GridRunReport, run_grid
from .store import RunRecord, RunStore, STATUSES

__all__ = [
    "ExperimentGrid",
    "GridPoint",
    "PointResult",
    "GridRunReport",
    "RunRecord",
    "RunStore",
    "STATUSES",
    "provenance",
    "resolve_driver",
    "run_grid",
]
