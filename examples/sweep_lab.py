#!/usr/bin/env python3
"""Sweep lab: a parallel, resumable parameter sweep through ``repro.lab``.

Declares a custom grid over the scheduler/FPC design space (the axes of
Fig 16b), runs it on a worker pool backed by a SQLite store, then shows
the three things the lab adds over a bare for-loop:

1. **parallelism** — the points run on several processes;
2. **persistence** — rerunning the script is instant (every point is a
   cache hit keyed by its content-hash run id), and a killed run resumes;
3. **provenance** — every row records git sha, package version and the
   calibration-constants hash, so results stay comparable across commits.

Run:  python examples/sweep_lab.py
"""

import os
import tempfile

from repro.lab import ExperimentGrid, RunStore, run_grid
from repro.lab.export import export_text, status_table

#: Keep the store across invocations so the second run demonstrates
#: caching.  Delete this file to start fresh.
DB = os.path.join(tempfile.gettempdir(), "repro-sweep-lab.sqlite")


def main() -> None:
    # --- 1. declare the sweep -------------------------------------------
    # A grid is a driver (dotted path, so worker processes can import it)
    # plus a parameter space; the cartesian product here is 2x2x2 = 8
    # cycle-simulated design points.
    grid = ExperimentGrid(
        name="design-space",
        driver="repro.lab.drivers:ablation_header_point",
        domains={
            "num_fpcs": [1, 8],
            "coalescing": [False, True],
            "workload": ["bulk", "rr"],
        },
        base={"cycles": 5_000},
        description="FPC count x coalescing x workload (Fig 16b axes)",
    )
    for point in grid.expand():
        print(f"  point {point.run_id}  {dict(point.params)}")

    # --- 2. run it on a worker pool -------------------------------------
    # Kill this mid-run and start it again: only unfinished points
    # execute.  Failed points would retry with capped backoff.
    print(f"\nrunning {len(grid.expand())} points on 4 workers (store: {DB})")
    report = run_grid(grid, DB, workers=4, timeout_s=120)
    print(
        f"-> {report.done}/{report.total} done, {report.cached} served "
        f"from cache, {report.errors} failed, {report.elapsed_s:.1f}s wall"
    )

    # --- 3. inspect the store -------------------------------------------
    with RunStore(DB) as store:
        print("\nstate counts:")
        print(status_table(store))
        print("\nresults (every row carries git sha + calibration hash):")
        print(export_text(store, experiment="design-space"))

    print(
        "\nrerun this script: every point is a cache hit.  "
        f"rm {DB} to measure again."
    )


if __name__ == "__main__":
    main()
