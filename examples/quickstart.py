#!/usr/bin/env python3
"""Quickstart: two F4T-accelerated hosts talking TCP.

Builds the paper's end-to-end setup (§5) — two FtEngines connected by a
simulated 100 GbE wire — and runs a client/server exchange through the
F4T socket library: connect, send, receive, close.  Everything below the
socket calls (handshake, congestion control, reassembly, ACKs, FINs)
happens inside the simulated hardware.

Run:  python examples/quickstart.py
"""

from repro.engine import Testbed
from repro.host import F4TLibrary


def main() -> None:
    # The testbed: engine A (10.0.0.1) <-- 100 Gbps wire --> engine B.
    testbed = Testbed()

    def pump(condition, timeout_s):
        """Blocking socket calls drive the simulation forward."""
        return testbed.run(until=condition, max_time_s=testbed.now_s + timeout_s)

    lib_a = F4TLibrary(testbed.engine_a, pump=pump)
    lib_b = F4TLibrary(testbed.engine_b, pump=pump)

    # --- Server side (host B) -------------------------------------------
    server = lib_b.socket()
    server.bind_listen(80)

    # --- Client side (host A) -------------------------------------------
    client = lib_a.socket()
    client.connect((testbed.engine_b.ip, 80))
    print(f"[{testbed.now_s * 1e6:7.1f} us] client connected")

    connection = server.accept()
    print(f"[{testbed.now_s * 1e6:7.1f} us] server accepted")

    # --- Exchange data ---------------------------------------------------
    request = b"GET /hello HTTP/1.1\r\nHost: repro\r\n\r\n"
    client.sendall(request)
    received = connection.recv_exactly(len(request))
    print(f"[{testbed.now_s * 1e6:7.1f} us] server got: {received[:20]!r}...")

    response = b"HTTP/1.1 200 OK\r\n\r\n" + b"F4T says hi! " * 100
    connection.sendall(response)
    answer = client.recv_exactly(len(response))
    print(f"[{testbed.now_s * 1e6:7.1f} us] client got {len(answer)} bytes back")

    # --- Tear down -------------------------------------------------------
    client.close()
    connection.close()
    testbed.run(
        until=lambda: not testbed.engine_a.flows and not testbed.engine_b.flows,
        max_time_s=10.0,
    )
    print(f"[{testbed.now_s * 1e6:7.1f} us] connections closed cleanly")

    # --- What the hardware did ------------------------------------------
    a, b = testbed.engine_a.counters, testbed.engine_b.counters
    print()
    print("engine A:", a.as_dict())
    print("engine B:", b.as_dict())
    print(f"wire carried {testbed.wire.bytes_sent} bytes in "
          f"{testbed.now_s * 1e6:.1f} simulated microseconds")


if __name__ == "__main__":
    main()
