#!/usr/bin/env python3
"""Observability tour: pcap capture, engine telemetry, invariant audits.

Three tools a downstream user gets for debugging protocol behaviour in
the reproduction:

1. **WireTap** — record the simulated wire to a real ``.pcap`` file
   (open it in Wireshark) and print a tcpdump-style summary;
2. **EngineTracer** — a logic-analyzer view of FtEngine's control path:
   events, FPU passes, transmissions, state transitions;
3. **InvariantMonitor** — hardware-assertion-style audits of the
   engine's architectural invariants while traffic runs.

Run:  python examples/debugging_tools.py
"""

import tempfile

from repro.engine import Testbed
from repro.engine.telemetry import EngineTracer
from repro.engine.verification import InvariantMonitor, audited_run
from repro.net.pcap import WireTap
from repro.net.wire import LossPattern, Wire


def main() -> None:
    # A lossy wire makes the trace interesting: watch the fast
    # retransmit appear in all three tools.
    wire = Wire(drop_a_to_b=LossPattern.explicit([12]))
    testbed = Testbed(wire=wire)

    tap = WireTap.attach(testbed.wire.port_a)
    tracer = EngineTracer.attach(testbed.engine_a)
    monitor = InvariantMonitor(testbed.engine_a)

    a_flow, b_flow = testbed.establish()
    payload = bytes(range(256)) * 100  # 25.6 KB
    testbed.engine_a.send_data(a_flow, payload)

    def done() -> bool:
        return testbed.engine_b.readable(b_flow) >= len(payload)

    audited_run(testbed, done, max_time_s=5.0, monitors=[monitor])
    received = testbed.engine_b.recv_data(b_flow, len(payload))
    assert received == payload, "data corrupted?!"

    # ---- 1. pcap ---------------------------------------------------------
    print("== WireTap: first 12 packets on the a->b wire ==")
    print("\n".join(tap.summary().splitlines()[:12]))
    with tempfile.NamedTemporaryFile(suffix=".pcap", delete=False) as handle:
        count = tap.save(handle.name)
        print(f"\nsaved {count} packets to {handle.name} (open in Wireshark)")

    # ---- 2. telemetry ----------------------------------------------------
    print("\n== EngineTracer: retransmission, as the engine saw it ==")
    lines = tracer.render().splitlines()
    interesting = [
        line for line in lines if "RTX" in line or "dupack" in line
    ]
    print("\n".join(interesting) if interesting else "(loss repaired before 3 dupACKs)")
    print(f"\ntrace totals: {tracer.count('event')} events, "
          f"{tracer.count('fpu')} FPU passes, {tracer.count('tx')} transmissions")
    print("state transitions:", " ; ".join(tracer.state_transitions(a_flow)))

    # ---- 3. invariants ---------------------------------------------------
    print("\n== InvariantMonitor ==")
    print(f"{monitor.checks_run} audits across the run, "
          f"{len(monitor.violations)} violations")
    monitor.assert_clean()
    print("all architectural invariants held (pointer order, monotonicity,")
    print("location-LUT consistency, CAM accounting, window sanity)")


if __name__ == "__main__":
    main()
