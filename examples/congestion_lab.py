#!/usr/bin/env python3
"""Congestion-control lab: F4T's programmability in action (§4.5, §5.4).

Three things the paper claims, demonstrated:

1. Users program the TCP stack by writing only FPU logic — here a brand
   new congestion algorithm is defined in ~15 lines and runs unchanged
   on the engine.
2. Algorithm latency does not cost throughput: NewReno (14-cycle FPU),
   CUBIC (41) and Vegas (68) all process 125 M events/s (Fig 15).
3. The engine's congestion behaviour matches an independent reference
   simulator (Fig 14): ASCII cwnd traces below.

Run:  python examples/congestion_lab.py
"""

from repro.analysis.cwnd import (
    capture_engine_cwnd_trace,
    compare_traces,
    reference_cwnd_trace,
)
from repro.analysis.microbench import measure_fpc_event_rate
from repro.tcp.congestion import CongestionControl, register
from repro.tcp.tcb import Tcb


# ---------------------------------------------------------------------------
# 1. A user-defined algorithm: AIMD with a configurable increase step.
#    In hardware this would be the C++ placeholder the HLS flow compiles
#    into the FPU (§4.5); here it is the same idea in Python.
# ---------------------------------------------------------------------------
@register
class EagerAimd(CongestionControl):
    """Additive increase of 2 MSS per RTT, multiplicative decrease 0.5."""

    name = "eager-aimd"
    fpu_latency_cycles = 9  # simple arithmetic: a shallow pipeline

    def _congestion_avoidance(self, tcb: Tcb, acked, now_s, rtt) -> None:
        grow = tcb.cc.get("accum", 0) + 2 * acked
        while grow >= tcb.cwnd:
            grow -= tcb.cwnd
            tcb.cwnd += tcb.mss
        tcb.cc["accum"] = grow


def demo_programmability() -> None:
    print("== 1. Programming the FPU ==")
    from repro.tcp.congestion import get_algorithm

    algorithm = get_algorithm("eager-aimd")
    print(f"registered {algorithm.name!r} "
          f"(FPU pipeline depth {algorithm.fpu_latency_cycles} cycles)")
    rate = measure_fpc_event_rate(fpu_latency=algorithm.fpu_latency_cycles, cycles=8000)
    print(f"FPC event rate with it: {rate / 1e6:.0f} M events/s")
    print()


def demo_versatility() -> None:
    print("== 2. Versatility: latency-independent throughput (Fig 15) ==")
    for name, latency in (("newreno", 14), ("cubic", 41), ("vegas", 68)):
        rate = measure_fpc_event_rate(fpu_latency=latency, cycles=8000)
        print(f"  {name:8s} ({latency:2d}-cycle FPU): {rate / 1e6:6.1f} M events/s")
    print("  -> identical, as the paper reports for all three (§5.4)")
    print()


def ascii_plot(trace, width=72, height=10, mss=1460):
    """Tiny ASCII renderer for a cwnd trace."""
    end = trace.times_s[-1]
    grid = [end * i / (width - 1) for i in range(width)]
    values = [trace.sample_at(t) / mss for t in grid]
    top = max(values) or 1
    rows = []
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        rows.append("".join("#" if v >= threshold else " " for v in values))
    rows.append("-" * width)
    return "\n".join(rows) + f"\n0 .. {end * 1e3:.1f} ms   (peak {top:.0f} MSS)"


def demo_trace_match() -> None:
    print("== 3. cwnd traces: F4T engine vs independent reference (Fig 14) ==")
    for algorithm in ("newreno", "cubic"):
        engine = capture_engine_cwnd_trace(algorithm=algorithm, duration_s=1.5e-3)
        reference = reference_cwnd_trace(algorithm=algorithm, duration_s=1.5e-3)
        comparison = compare_traces(engine, reference)
        print(f"\n--- {algorithm}: F4T engine (functional simulation) ---")
        print(ascii_plot(engine))
        print(f"--- {algorithm}: reference simulator (NS3 stand-in) ---")
        print(ascii_plot(reference))
        print(f"mean-cwnd ratio {comparison.mean_cwnd_ratio:.2f}, "
              f"{comparison.engine_decreases} vs {comparison.reference_decreases} "
              f"loss reactions")


if __name__ == "__main__":
    demo_programmability()
    demo_versatility()
    demo_trace_match()
