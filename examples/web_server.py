#!/usr/bin/env python3
"""The paper's motivating workload: an Nginx-style web server on F4T (§5.2).

Serves the evaluation's 256 B responses (HTTP header + HTML payload) to
a wrk-style closed-loop load generator over real engine connections, and
contrasts the functional run with the calibrated Linux-vs-F4T models
behind Figures 10–12.

Run:  python examples/web_server.py
"""

from repro.apps.nginx import NginxPerformanceModel, simulate_closed_loop
from repro.apps.wrk import run_functional_wrk


def functional_demo() -> None:
    print("== Functional run: real HTTP over two FtEngines ==")
    result = run_functional_wrk(connections=6, requests_per_connection=10)
    print(f"requests served : {result.requests_completed}")
    print(f"simulated time  : {result.elapsed_s * 1e6:.1f} us")
    print(f"request rate    : {result.requests_per_s / 1e3:.0f} K requests/s")
    print(f"median latency  : {result.latencies.median * 1e6:.2f} us")
    print(f"p99 latency     : {result.latencies.p99 * 1e6:.2f} us")
    print()


def model_comparison() -> None:
    print("== Calibrated comparison: Linux vs F4T (Figs 10-12) ==")
    model = NginxPerformanceModel(cores=1)
    print(f"per-request budget : Linux {model.linux_cycles_per_request:.0f} cycles, "
          f"F4T {model.f4t_cycles_per_request:.0f} cycles")
    print(f"request-rate gain  : {model.speedup():.2f}x   (paper: 2.6-2.8x)")
    print(f"CPU cycles saved   : {model.cpu_savings_fraction() * 100:.0f}%   (paper: 64%)")
    print()

    print("closed-loop latency at 64 flows on one core (Fig 12):")
    for stack in ("linux", "f4t"):
        rate, latencies = simulate_closed_loop(stack, flows=64, cores=1, requests=20_000)
        print(f"  {stack:5s}: median {latencies.median * 1e6:7.1f} us, "
              f"p99 {latencies.p99 * 1e6:7.1f} us, {rate / 1e3:.0f} Krps")
    print()

    print("where each stack's cycles go (Fig 11):")
    for stack in ("linux", "f4t"):
        fractions = model.cycle_breakdown(stack).fractions()
        parts = ", ".join(f"{k} {v * 100:.0f}%" for k, v in sorted(fractions.items()) if v)
        print(f"  {stack:5s}: {parts}")


if __name__ == "__main__":
    functional_demo()
    model_comparison()
