#!/usr/bin/env python3
"""Connectivity stress: many flows, TCB migration, and the Fig 13 sweep.

Part 1 runs a *functional* stress test with deliberately tiny FPCs
(2 FPCs x 2 slots) so most TCBs live in DRAM: every transfer exercises
the scheduler's migration protocol — evict flag, evict checker, pending
queue, swap-in — with end-to-end data integrity checked.

Part 2 reproduces Fig 13's shape: the echo request rate across 256 to
65 536 flows for Linux, F4T-with-DDR4 and F4T-with-HBM.

Run:  python examples/connectivity_stress.py
"""

from repro.apps.echo import EchoModel
from repro.engine import FtEngineConfig, Testbed
from repro.host import CpuModel, LinuxTcpStack


def functional_migration_stress(flows: int = 16) -> None:
    print(f"== Part 1: {flows} flows on 2x2-slot engines (forced migration) ==")
    tiny = FtEngineConfig(num_fpcs=2, fpc_slots=2)
    testbed = Testbed(config_a=tiny, config_b=FtEngineConfig(num_fpcs=2, fpc_slots=2))
    testbed.engine_b.listen(80)
    client_flows = [testbed.engine_a.connect(testbed.engine_b.ip, 80) for _ in range(flows)]
    server_flows = []

    def all_accepted():
        flow = testbed.engine_b.accept(80)
        if flow is not None:
            server_flows.append(flow)
        return len(server_flows) == flows

    assert testbed.run(until=all_accepted, max_time_s=5.0)
    print(f"established {flows} connections; "
          f"{testbed.engine_a.memory_manager.flow_count} client TCBs in DRAM")

    payloads = {
        flow: bytes((i * 37 + index) % 256 for i in range(4000))
        for index, flow in enumerate(client_flows)
    }
    for flow, data in payloads.items():
        testbed.engine_a.send_data(flow, data)
    assert testbed.run(
        until=lambda: all(testbed.engine_b.readable(f) >= 4000 for f in server_flows),
        max_time_s=10.0,
    )
    received = sorted(testbed.engine_b.recv_data(f, 4000) for f in server_flows)
    assert received == sorted(payloads.values()), "data corrupted in migration!"
    scheduler = testbed.engine_a.scheduler
    print(f"all {flows * 4000} bytes delivered intact")
    print(f"migrations: {scheduler.evictions} evictions, "
          f"{scheduler.swap_ins} swap-ins, "
          f"{scheduler.pending_retries} pending-queue retries "
          f"(max depth {scheduler.max_pending})")
    print()


def fig13_sweep() -> None:
    print("== Part 2: echo rate vs flow count (Fig 13, 8 cores) ==")
    linux = LinuxTcpStack(CpuModel(cores=8))
    ddr4 = EchoModel(cores=8, memory="ddr4")
    hbm = EchoModel(cores=8, memory="hbm")
    print(f"{'flows':>7} | {'Linux':>9} | {'F4T-DDR4':>9} | {'F4T-HBM':>9}")
    print("-" * 45)
    for flows in (256, 1024, 2048, 4096, 16384, 65536):
        row = (
            linux.echo_rate(flows) / 1e6,
            ddr4.rate(flows) / 1e6,
            hbm.rate(flows) / 1e6,
        )
        marker = "  <- DRAM swap throttling" if flows > 1024 and row[1] < 0.9 * row[2] else ""
        print(f"{flows:7d} | {row[0]:7.2f} M | {row[1]:7.1f} M | {row[2]:7.1f} M{marker}")
    print("\nF4T-HBM stays flat to 64K flows; DDR4 throttles past the 1024")
    print("SRAM-resident flows — the paper's Fig 13 shape.")


if __name__ == "__main__":
    functional_migration_stress()
    fig13_sweep()
