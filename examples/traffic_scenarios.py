#!/usr/bin/env python3
"""Traffic scenarios: declarative, replayable load generation.

Walks the :mod:`repro.traffic` layer end to end:

1. **compose** a scenario — a Poisson short-RPC class plus a Zipf
   heavy-tail bulk class, with seeded wire impairments;
2. **run** it open-loop on the functional two-engine testbed and read
   per-class offered vs. achieved load and latency percentiles;
3. **replay** it — same seed, bit-identical metrics — then change the
   seed and watch the run change;
4. **sweep** offered load on the calibrated model backend to get the
   latency-vs-load curve and its knee.

Run:  python examples/traffic_scenarios.py
"""

from repro.traffic import (
    Fixed,
    Impairments,
    Poisson,
    Scenario,
    TrafficClass,
    Zipf,
    run_scenario,
    sweep_load,
)


def main() -> None:
    # --- 1. compose ------------------------------------------------------
    # Two classes share one testbed: latency-sensitive RPCs and a Zipf
    # bulk class whose elephants squat on the wire.  One top-level seed
    # derives every RNG stream (arrivals, sizes, wire faults).
    scenario = Scenario(
        name="demo",
        seed=42,
        duration_s=300e-6,
        impairments=Impairments(drop_probability=0.002),
        classes=[
            TrafficClass(
                name="rpc",
                arrival=Poisson(rate=120e3),
                request=Fixed(64),
                response=Fixed(256),
                connections=6,
            ),
            TrafficClass(
                name="bulk",
                arrival=Poisson(rate=10e3),
                request=Zipf(s=1.1, minimum=1024, maximum=65536),
                response=Fixed(0),  # one-way stream
                connections=2,
            ),
        ],
    )
    print(scenario.describe())

    # --- 2. run functionally --------------------------------------------
    # Open loop: requests arrive on schedule whether or not the engines
    # keep up, so latency includes queueing from the *scheduled* arrival.
    result = run_scenario(scenario, audit=True)
    print()
    print(result.summary())
    print(result.table())

    # --- 3. replay -------------------------------------------------------
    again = run_scenario(scenario, audit=True)
    assert again.to_csv() == result.to_csv()
    assert again.frames_dropped == result.frames_dropped
    reseeded = run_scenario(scenario.with_seed(43))
    print(
        f"\nreplay: identical (down to {result.frames_dropped} dropped "
        f"frames); seed 43 gives {reseeded.offered} arrivals "
        f"vs {result.offered}"
    )

    # --- 4. sweep to the knee -------------------------------------------
    # The calibrated model backend runs the same schedules in
    # milliseconds, which makes dense latency-vs-load curves cheap.
    sweep = sweep_load(
        scenario, [0.5, 1, 2, 4, 8, 16, 24, 32], backend="model"
    )
    print()
    print(sweep.summary())
    print(sweep.table())


if __name__ == "__main__":
    main()
